"""Streaming runtime benchmark: StreamRouter vs sequential single-engine runs.

Simulates ``N`` camera feeds answering one mixed query workload whose queries
span several ``(window, duration)`` groups and compares two ways of serving
it, writing a ``BENCH_streaming.json`` report:

* **baseline** — the workflow without the router: every query runs in its own
  engine over every feed, sequentially.  This is what
  :class:`~repro.engine.config.EngineConfig`'s "queries with differing
  windows should be run in separate engine instances" caveat leaves a user
  with, since grouping by hand is exactly what the router automates;
* **router** — one :class:`~repro.streaming.router.StreamRouter` ingesting
  the interleaved feeds.  Queries sharing a window group also share one MCOS
  generation pass per stream, so the state-maintenance work drops from one
  pass per (feed, query) to one per (feed, group).

Both sides answer the same workload over the same frames and are verified to
produce identical matches before any number is reported.  Label projection
(``restrict_labels``) is disabled on every configuration: a single-query
engine would otherwise project frames onto *its* query's classes while a
grouped engine projects onto the group union, making per-query answers
legitimately differ — with projection off, per-query matches are invariant
to grouping and the verification is exact.  (The simulated feeds only emit
the four classes the workload queries anyway, so projection would be a
no-op here.)  The headline
``aggregate_frames_per_sec`` is *source* frames served per second — feeds
times frames per feed, divided by wall seconds — i.e. how fast each
architecture drains the same fleet of camera feeds.

A ``grouped_baseline`` (one engine per (feed, group), sequential, no router
machinery) is reported as well: it isolates how much of the win is the
auto-grouping (all of it) versus router overhead (batching and the reorder
buffer cost a few percent, which the comparison makes visible).
"""

from __future__ import annotations

import json
import os
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.config import EngineConfig, MCOSMethod
from repro.engine.engine import TemporalVideoQueryEngine
from repro.streaming.faultinject import Fault, FaultPlan
from repro.streaming.pool import ShardWorkerPool, deterministic_stats, match_report
from repro.streaming.supervision import SupervisionConfig
from repro.streaming.router import StreamRouter, group_queries_by_window
from repro.workloads.streams import (
    bench_scenario,
    drifting_hotspot_scenario,
    interleave_drifting,
    interleave_feeds,
    interleave_skewed,
    skewed_scenario,
)

#: Window groups of the default workload (scaled paper-style parameters).
DEFAULT_GROUPS: Sequence[Tuple[int, int]] = ((24, 16), (36, 24), (48, 32))

#: Queries per window group in the default workload.
DEFAULT_QUERIES_PER_GROUP = 4

#: Simulated camera feeds (the acceptance configuration).
DEFAULT_FEEDS = 8

#: Frames per simulated feed.
DEFAULT_FRAMES = 400


def _timed_per_query_baseline(feeds, queries, method):
    """One engine per (feed, query), sequential: matches by slot + seconds."""
    matches: Dict[Tuple[str, int], List] = {}
    start = time.perf_counter()
    for stream_id, relation in feeds.items():
        for query in queries:
            engine = TemporalVideoQueryEngine(
                [query],
                EngineConfig(
                    method=method,
                    window_size=query.window,
                    duration=query.duration,
                    restrict_labels=False,
                ),
            )
            matches[(stream_id, query.query_id)] = engine.run(relation).matches
    return matches, time.perf_counter() - start


def _timed_grouped_baseline(feeds, grouped, method):
    """One engine per (feed, window group), sequential: per-stream matches."""
    matches: Dict[str, List] = {stream_id: [] for stream_id in feeds}
    start = time.perf_counter()
    for stream_id, relation in feeds.items():
        for (window, duration), group_queries in grouped.items():
            engine = TemporalVideoQueryEngine(
                group_queries,
                EngineConfig(
                    method=method,
                    window_size=window,
                    duration=duration,
                    restrict_labels=False,
                ),
            )
            matches[stream_id].extend(engine.run(relation).matches)
    return matches, time.perf_counter() - start


def run_streaming_benchmark(
    num_feeds: int = DEFAULT_FEEDS,
    frames_per_feed: int = DEFAULT_FRAMES,
    groups: Sequence[Tuple[int, int]] = DEFAULT_GROUPS,
    queries_per_group: int = DEFAULT_QUERIES_PER_GROUP,
    method: MCOSMethod = MCOSMethod.SSG,
    batch_size: int = 16,
    seed: int = 7,
    output_path: Optional[str] = "BENCH_streaming.json",
) -> Dict:
    """Run the comparison and return (and optionally write) the report."""
    if num_feeds <= 0 or frames_per_feed <= 0:
        raise ValueError(
            f"num_feeds and frames_per_feed must be positive, got "
            f"{num_feeds} and {frames_per_feed}"
        )
    feeds, queries = bench_scenario(
        num_feeds, frames_per_feed, groups, queries_per_group, seed
    )
    total_frames = sum(relation.num_frames for relation in feeds.values())

    # --- baseline: one engine per (feed, query), sequential ---------------
    baseline_matches, baseline_seconds = _timed_per_query_baseline(
        feeds, queries, method
    )

    # --- grouped baseline: one engine per (feed, window group) ------------
    grouped = group_queries_by_window(queries)
    grouped_matches, grouped_seconds = _timed_grouped_baseline(
        feeds, grouped, method
    )

    # --- router: auto-grouped shards over the interleaved feeds -----------
    router = StreamRouter(
        queries, method=method, batch_size=batch_size, restrict_labels=False
    )
    events = list(interleave_feeds(feeds))
    start = time.perf_counter()
    router.route_many(events)
    router.flush()
    router_seconds = time.perf_counter() - start

    _verify_equivalence(router, feeds, baseline_matches, grouped_matches)

    def throughput(seconds: float) -> float:
        return round(total_frames / seconds, 2) if seconds else 0.0

    router_stats = router.stats()
    report: Dict = {
        "benchmark": "streaming",
        "method": method.value,
        "feeds": num_feeds,
        "frames_per_feed": frames_per_feed,
        "total_source_frames": total_frames,
        "queries": len(queries),
        "window_groups": len(grouped),
        "batch_size": batch_size,
        "seed": seed,
        "baseline": {
            "description": "one engine per (feed, query), sequential",
            "engine_runs": num_feeds * len(queries),
            "seconds": round(baseline_seconds, 5),
            "aggregate_frames_per_sec": throughput(baseline_seconds),
        },
        "grouped_baseline": {
            "description": "one engine per (feed, window group), sequential",
            "engine_runs": num_feeds * len(grouped),
            "seconds": round(grouped_seconds, 5),
            "aggregate_frames_per_sec": throughput(grouped_seconds),
        },
        "router": {
            "description": "StreamRouter, auto-grouped per-(stream, group) shards",
            "shards": router_stats["shards"],
            "seconds": round(router_seconds, 5),
            "aggregate_frames_per_sec": throughput(router_seconds),
            "ingest_totals": router_stats["totals"],
        },
        "speedup_vs_baseline": round(baseline_seconds / router_seconds, 2)
        if router_seconds else 0.0,
        "speedup_vs_grouped_baseline": round(grouped_seconds / router_seconds, 2)
        if router_seconds else 0.0,
        "results_verified_identical": True,
    }

    if output_path:
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2)
        report["__written_to__"] = os.path.abspath(output_path)
    return report


def _verify_equivalence(
    router: StreamRouter,
    feeds: Dict,
    baseline_matches: Dict,
    grouped_matches: Dict,
) -> None:
    """Assert all three configurations answered the workload identically.

    Matches are compared per (stream, query) against the dedicated
    single-query engines: both the router's and the grouped baseline's
    matches are split by query id and must equal the per-query engine's
    list.  A silent divergence here would make the speedups meaningless, so
    this raises instead of reporting.
    """
    def split_by_query(matches) -> Dict[int, List]:
        per_query: Dict[int, List] = {
            query.query_id: [] for query in router.queries
        }
        for match in matches:
            per_query[match.query_id].append(match)
        return per_query

    for stream_id in feeds:
        contenders = {
            "router": split_by_query(router.matches_for(stream_id)),
            "grouped baseline": split_by_query(grouped_matches[stream_id]),
        }
        for query in router.queries:
            expected = baseline_matches[(stream_id, query.query_id)]
            for label, per_query in contenders.items():
                actual = per_query[query.query_id]
                if actual != expected:
                    raise AssertionError(
                        f"{label} diverged from the dedicated engine on "
                        f"stream {stream_id!r}, query {query.query_id} "
                        f"({len(actual)} vs {len(expected)} matches)"
                    )


#: Worker processes of the default pool benchmark configuration.
DEFAULT_WORKERS = 4

#: Worker processes of the skew and chaos scenarios.  Their workloads are
#: deliberately small (few feeds, seeded fault plans), so more workers only
#: add process startup overhead; the CLI help documents both defaults.
DEFAULT_SCENARIO_WORKERS = 2


def _available_parallelism() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_pool_benchmark(
    num_feeds: int = DEFAULT_FEEDS,
    frames_per_feed: int = DEFAULT_FRAMES,
    groups: Sequence[Tuple[int, int]] = DEFAULT_GROUPS,
    queries_per_group: int = DEFAULT_QUERIES_PER_GROUP,
    method: MCOSMethod = MCOSMethod.SSG,
    batch_size: int = 16,
    workers: int = DEFAULT_WORKERS,
    dispatch_batch: int = 64,
    checkpoint_every: int = 16,
    seed: int = 7,
    smoke: bool = False,
    output_path: Optional[str] = "BENCH_pool.json",
) -> Dict:
    """Benchmark the multiprocess shard pool against single-process serving.

    Three architectures answer the same 8-feed workload (``--smoke`` shrinks
    it for CI):

    * **sequential** — one engine per (feed, window group), run one after
      another: the no-runtime baseline;
    * **router** — one in-process :class:`StreamRouter` over the interleaved
      feeds (PR 2's architecture);
    * **pool** — a :class:`ShardWorkerPool` with ``workers`` processes over
      the identical event sequence.

    All three are verified to produce identical per-stream, per-query
    matches before any number is reported; the pool's deterministic ingest
    stats must additionally equal the router's byte for byte.  The timed
    window for router and pool is route + flush (every frame fully
    processed, matches retained); worker spawn/hand-off cost is reported
    separately as ``setup_seconds``.  ``cpus`` records the measured
    parallelism available — the pool's speedup over the router is capped by
    it, so a single-CPU machine reports the (honest) overhead-bound number
    while a multi-core one shows the scale-out win.
    """
    if smoke:
        num_feeds = min(num_feeds, 3)
        frames_per_feed = min(frames_per_feed, 120)
        workers = min(workers, 2)
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    feeds, queries = bench_scenario(
        num_feeds, frames_per_feed, groups, queries_per_group, seed
    )
    total_frames = sum(relation.num_frames for relation in feeds.values())
    grouped = group_queries_by_window(queries)
    events = list(interleave_feeds(feeds))

    # --- per-query sequential: one engine per (feed, query) --------------
    # The naive no-runtime deployment (every query its own engine): what a
    # user is left with before the router's auto-grouping, and the fleet-
    # drain cost the pool is ultimately deployed against.
    per_query_baseline, per_query_seconds = _timed_per_query_baseline(
        feeds, queries, method
    )

    # --- sequential: one engine per (feed, window group) ------------------
    sequential_matches, sequential_seconds = _timed_grouped_baseline(
        feeds, grouped, method
    )

    # --- single-process router --------------------------------------------
    router = StreamRouter(
        queries, method=method, batch_size=batch_size, restrict_labels=False
    )
    start = time.perf_counter()
    router.route_many(events)
    router.flush()
    router_seconds = time.perf_counter() - start

    # --- multiprocess pool -------------------------------------------------
    pool_router = StreamRouter(
        queries, method=method, batch_size=batch_size, restrict_labels=False
    )
    pool = ShardWorkerPool(
        pool_router,
        num_workers=workers,
        dispatch_batch=dispatch_batch,
        checkpoint_every=checkpoint_every,
    )
    start = time.perf_counter()
    pool.start()
    setup_seconds = time.perf_counter() - start
    start = time.perf_counter()
    pool.route_many(events)
    pool.flush()
    pool_seconds = time.perf_counter() - start

    # --- verification: all three architectures answered identically -------
    router_reports = {
        stream_id: router.matches_for(stream_id) for stream_id in feeds
    }
    pool_reports = {
        stream_id: pool.matches_for(stream_id) for stream_id in feeds
    }
    if match_report(router_reports) != match_report(pool_reports):
        pool.terminate()
        raise AssertionError(
            "pool matches diverged from the single-process router"
        )
    pool_stats = deterministic_stats(pool.stats())
    router_stats = deterministic_stats(router.stats())
    pool.stop()
    if pool_stats != router_stats:
        raise AssertionError(
            "pool deterministic stats diverged from the single-process router"
        )
    _verify_equivalence(router, feeds, per_query_baseline, sequential_matches)

    def throughput(seconds: float) -> float:
        return round(total_frames / seconds, 2) if seconds else 0.0

    cpus = _available_parallelism()
    report: Dict = {
        "benchmark": "pool",
        "method": method.value,
        "feeds": num_feeds,
        "frames_per_feed": frames_per_feed,
        "total_source_frames": total_frames,
        "queries": len(queries),
        "window_groups": len(grouped),
        "batch_size": batch_size,
        "seed": seed,
        "smoke": smoke,
        "cpus": cpus,
        "sequential_per_query": {
            "description": "one engine per (feed, query), sequential",
            "engine_runs": num_feeds * len(queries),
            "seconds": round(per_query_seconds, 5),
            "aggregate_frames_per_sec": throughput(per_query_seconds),
        },
        "sequential": {
            "description": "one engine per (feed, window group), sequential",
            "engine_runs": num_feeds * len(grouped),
            "seconds": round(sequential_seconds, 5),
            "aggregate_frames_per_sec": throughput(sequential_seconds),
        },
        "router": {
            "description": "single-process StreamRouter",
            "shards": num_feeds * len(grouped),
            "seconds": round(router_seconds, 5),
            "aggregate_frames_per_sec": throughput(router_seconds),
        },
        "pool": {
            "description": f"ShardWorkerPool, {workers} worker processes",
            "workers": workers,
            "dispatch_batch": dispatch_batch,
            "checkpoint_every": checkpoint_every,
            "setup_seconds": round(setup_seconds, 5),
            "seconds": round(pool_seconds, 5),
            "aggregate_frames_per_sec": throughput(pool_seconds),
        },
        "speedup_vs_router": round(router_seconds / pool_seconds, 2)
        if pool_seconds else 0.0,
        "speedup_vs_sequential": round(sequential_seconds / pool_seconds, 2)
        if pool_seconds else 0.0,
        "speedup_vs_sequential_per_query": round(
            per_query_seconds / pool_seconds, 2
        ) if pool_seconds else 0.0,
        "results_verified_identical": True,
    }
    if cpus < 2:
        report["note"] = (
            f"measured on {cpus} available CPU(s): worker processes "
            "time-share one core, so the speedup over the in-process router "
            "is bounded by ~1.0x here; the scale-out target (>=1.8x with "
            f"{workers} workers) requires at least 2 free cores"
        )

    if output_path:
        report["__written_to__"] = _write_pool_bench_json(output_path, report)
    return report


#: Named-scenario blocks that live inside ``BENCH_pool.json`` alongside the
#: throughput report.  Every scenario writer and the carry-over logic in
#: :func:`_write_pool_bench_json` share this one list, so adding a scenario
#: cannot silently lose another's recording.
POOL_SCENARIO_KEYS: Sequence[str] = ("skew", "chaos", "drift")


def _write_pool_bench_json(
    output_path: str, report: Dict, scenario_key: Optional[str] = None
) -> str:
    """Write one scenario's report into the shared ``BENCH_pool.json``.

    The throughput and named scenarios share the file: the throughput run
    owns the top-level keys (``scenario_key=None``) and carries over every
    recorded block named in :data:`POOL_SCENARIO_KEYS`; a named scenario
    replaces only its own block and leaves the rest of the document
    untouched.  One merge implementation for every writer, so a rerun of
    either scenario never discards the other's recording.
    """
    if scenario_key is not None and scenario_key not in POOL_SCENARIO_KEYS:
        raise ValueError(
            f"unregistered pool bench scenario {scenario_key!r}; add it to "
            "POOL_SCENARIO_KEYS so throughput reruns preserve its block"
        )
    existing: Optional[Dict] = None
    if os.path.exists(output_path):
        try:
            with open(output_path) as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                existing = loaded
        except (OSError, ValueError) as exc:
            # Carrying nothing over from an unreadable file is the only
            # option, but it must not be silent — the other scenario's
            # recording is about to be lost.
            warnings.warn(
                f"existing {output_path} could not be read ({exc!r}); "
                "rewriting it without carried-over scenario blocks",
                RuntimeWarning,
                stacklevel=2,
            )
    if scenario_key is None:
        # Shallow copy: carried-over blocks belong to the file, not to the
        # caller's freshly produced report object.
        document = dict(report)
        if existing is not None:
            for key in POOL_SCENARIO_KEYS:
                if key in existing:
                    document.setdefault(key, existing[key])
    else:
        document = existing if existing is not None else {"benchmark": "pool"}
        document[scenario_key] = report
    with open(output_path, "w") as handle:
        json.dump(document, handle, indent=2)
    return os.path.abspath(output_path)


#: Window groups of the skew scenario (two groups keep it light — the
#: interesting axis is placement, not workload width).
SKEW_GROUPS: Sequence[Tuple[int, int]] = ((24, 16), (36, 24))


def _load_imbalance(
    frames_per_worker: Sequence[int], ndigits: Optional[int] = 4
) -> float:
    """Max/mean ratio of per-worker offered load (1.0 = perfectly even).

    ``ndigits=None`` returns the exact ratio — the improvement assertions
    compare unrounded values so a genuine sub-rounding-step improvement is
    never misread as a tie; reports carry the rounded form.
    """
    if not frames_per_worker:
        return 0.0
    mean = sum(frames_per_worker) / len(frames_per_worker)
    if not mean:
        return 0.0
    ratio = max(frames_per_worker) / mean
    return ratio if ndigits is None else round(ratio, ndigits)


def run_skew_benchmark(
    num_feeds: int = 6,
    frames_per_feed: int = 150,
    hot_factor: int = 4,
    groups: Sequence[Tuple[int, int]] = SKEW_GROUPS,
    queries_per_group: int = 2,
    method: MCOSMethod = MCOSMethod.SSG,
    batch_size: int = 16,
    workers: int = DEFAULT_SCENARIO_WORKERS,
    dispatch_batch: int = 32,
    checkpoint_every: int = 16,
    seed: int = 7,
    smoke: bool = False,
    output_path: Optional[str] = "BENCH_pool.json",
) -> Dict:
    """The skewed-load placement scenario (``--bench pool --scenario skew``).

    One hot camera feed runs ``hot_factor``× the frame rate of its
    siblings, and siblings come online staggered — the regime round-robin
    stream→worker placement handles worst, because every second newcomer
    lands next to the hot stream.  Three pool configurations serve the
    identical event sequence:

    * **round-robin** — the deterministic default placement;
    * **least-loaded** — newcomers land on the least-loaded worker;
    * **round-robin + rebalance** — round-robin placement for the first
      half of the stream, then a live :meth:`ShardWorkerPool.rebalance`
      (migrating streams between workers mid-flight), then the second half.

    The reported ``imbalance`` is max/mean of per-worker *offered load*
    (frames routed to each worker — the time-integral of the queue pressure
    a worker is put under; instantaneous queue depths are scheduling noise
    on a shared machine, offered load is a pure function of placement).
    For the rebalance run it is reported separately for the halves before
    and after the migration point.  Every configuration's matches are
    verified byte-identical to the single-process router oracle, and the
    oracle itself is verified against dedicated sequential per-query
    engines — placement never buys a single changed byte.
    """
    if smoke:
        num_feeds = min(num_feeds, 4)
        frames_per_feed = min(frames_per_feed, 60)
        workers = min(workers, 2)
    if workers < 2:
        raise ValueError(
            f"the skew scenario needs at least 2 workers, got {workers}"
        )
    if workers >= num_feeds:
        # With a worker per stream there is no placement contention: every
        # policy produces the same (trivial) layout and the improvement
        # assertions below could not hold.  Fail with a clear message
        # instead of a mid-run AssertionError.
        raise ValueError(
            f"the skew scenario needs more feeds than workers to create "
            f"placement contention, got {num_feeds} feeds for {workers} "
            "workers"
        )
    feeds, queries, hot_stream = skewed_scenario(
        num_feeds, frames_per_feed, groups, queries_per_group, seed,
        hot_factor=hot_factor,
    )
    events = interleave_skewed(feeds, hot_stream, hot_factor)
    total_frames = sum(relation.num_frames for relation in feeds.values())

    # --- oracle: single-process router + sequential-engine verification ---
    router = StreamRouter(
        queries, method=method, batch_size=batch_size, restrict_labels=False
    )
    router.route_many(events)
    router.flush()
    per_query_baseline, _ = _timed_per_query_baseline(feeds, queries, method)
    grouped = group_queries_by_window(queries)
    grouped_matches, _ = _timed_grouped_baseline(feeds, grouped, method)
    _verify_equivalence(router, feeds, per_query_baseline, grouped_matches)
    oracle_report = match_report(
        {sid: router.matches_for(sid) for sid in router.stream_ids()}
    )

    def run_pool(placement: str, rebalance_at: Optional[int] = None) -> Dict:
        pool = ShardWorkerPool(
            StreamRouter(
                queries, method=method, batch_size=batch_size,
                restrict_labels=False,
            ),
            num_workers=workers,
            dispatch_batch=dispatch_batch,
            checkpoint_every=checkpoint_every,
            placement=placement,
        )
        pool.start()
        try:
            start = time.perf_counter()
            if rebalance_at is None:
                pool.route_many(events)
                pool.flush()
                seconds = time.perf_counter() - start
                entry: Dict = {
                    "placement": placement,
                    "frames_per_worker": [
                        load["frames"] for load in pool.worker_loads()
                    ],
                }
                entry["imbalance"] = _load_imbalance(entry["frames_per_worker"])
            else:
                pool.route_many(events[:rebalance_at])
                before = [load["frames"] for load in pool.worker_loads()]
                plan = pool.rebalance(policy="least-loaded")
                # Migration moves a stream's load history to its new owner;
                # re-baseline after the re-pack so the "after" phase
                # measures only frames offered under the new placement.
                rebased = [load["frames"] for load in pool.worker_loads()]
                pool.route_many(events[rebalance_at:])
                pool.flush()
                seconds = time.perf_counter() - start
                total = [load["frames"] for load in pool.worker_loads()]
                after = [t - b for t, b in zip(total, rebased)]
                entry = {
                    "placement": f"{placement} + live rebalance",
                    "migrations": len(plan),
                    "frames_per_worker_before": before,
                    "frames_per_worker_after": after,
                    "imbalance_before": _load_imbalance(before),
                    "imbalance_after": _load_imbalance(after),
                }
            entry["seconds"] = round(seconds, 5)
            actual = match_report(
                {sid: pool.matches_for(sid) for sid in pool.stream_ids()}
            )
            if actual != oracle_report:
                raise AssertionError(
                    f"pool matches under {entry['placement']} placement "
                    "diverged from the single-process router"
                )
        except BaseException:
            pool.terminate()
            raise
        pool.stop()
        return entry

    round_robin = run_pool("round-robin")
    least_loaded = run_pool("least-loaded")
    rebalanced = run_pool("round-robin", rebalance_at=len(events) // 2)

    # Assert on the exact (unrounded) ratios, recomputed from the recorded
    # per-worker loads — rounding must never turn a real improvement into
    # an apparent tie.
    if _load_imbalance(least_loaded["frames_per_worker"], ndigits=None) >= \
            _load_imbalance(round_robin["frames_per_worker"], ndigits=None):
        raise AssertionError(
            "least-loaded placement did not reduce the load imbalance "
            f"({least_loaded['imbalance']} vs round-robin "
            f"{round_robin['imbalance']})"
        )
    if _load_imbalance(
        rebalanced["frames_per_worker_after"], ndigits=None
    ) >= _load_imbalance(
        rebalanced["frames_per_worker_before"], ndigits=None
    ):
        raise AssertionError(
            "live rebalancing did not reduce the load imbalance "
            f"({rebalanced['imbalance_before']} -> "
            f"{rebalanced['imbalance_after']})"
        )

    skew_report: Dict = {
        "scenario": "skew",
        "method": method.value,
        "feeds": num_feeds,
        "frames_per_feed": frames_per_feed,
        "hot_stream": hot_stream,
        "hot_factor": hot_factor,
        "total_source_frames": total_frames,
        "queries": len(queries),
        "workers": workers,
        "seed": seed,
        "smoke": smoke,
        "cpus": _available_parallelism(),
        "round_robin": round_robin,
        "least_loaded": least_loaded,
        "rebalanced": rebalanced,
        "results_verified_identical": True,
    }

    if output_path:
        skew_report["__written_to__"] = _write_pool_bench_json(
            output_path, skew_report, scenario_key="skew"
        )
    return skew_report


def render_skew_report(report: Dict) -> str:
    """Plain-text table of the skewed-load placement report."""
    lines = [
        f"pool skew benchmark  method={report['method']}  "
        f"feeds={report['feeds']} (hot x{report['hot_factor']})  "
        f"workers={report['workers']}  cpus={report['cpus']}",
        f"{'placement':34s} {'imbalance (max/mean load)':>26s}",
        f"{'round-robin':34s} {report['round_robin']['imbalance']:26.4f}",
        f"{'least-loaded':34s} {report['least_loaded']['imbalance']:26.4f}",
        f"{'round-robin + live rebalance':34s} "
        f"{report['rebalanced']['imbalance_before']:13.4f} -> "
        f"{report['rebalanced']['imbalance_after']:.4f} "
        f"({report['rebalanced']['migrations']} migrations)",
        "matches byte-identical to the sequential baseline on every run",
    ]
    return "\n".join(lines)


#: Window groups of the chaos scenario (two groups keep the workload light —
#: the interesting axis is failure handling, not workload width).
CHAOS_GROUPS: Sequence[Tuple[int, int]] = ((24, 16), (36, 24))


def run_chaos_benchmark(
    num_feeds: int = 6,
    frames_per_feed: int = 150,
    groups: Sequence[Tuple[int, int]] = CHAOS_GROUPS,
    queries_per_group: int = 2,
    method: MCOSMethod = MCOSMethod.SSG,
    batch_size: int = 16,
    workers: int = DEFAULT_SCENARIO_WORKERS,
    dispatch_batch: int = 16,
    checkpoint_every: int = 8,
    seed: int = 7,
    smoke: bool = False,
    output_path: Optional[str] = "BENCH_pool.json",
) -> Dict:
    """The fault-recovery scenario (``--bench pool --scenario chaos``).

    Exercises the pool's supervision layer end to end and records what
    failures *cost*, against the same oracle discipline every other pool
    scenario uses (nothing is reported before the results are verified
    byte-identical).  Three runs over the identical event sequence:

    * **fault_free** — the pool with no plan installed: the throughput
      baseline the fault runs are compared against;
    * **recovery** — a seeded :class:`~repro.streaming.faultinject.FaultPlan`
      mixing every recoverable kind (SIGKILL mid-operation, a hang the
      watchdog must escalate, slow consumption, a swallowed ack, a
      checkpoint-write failure).  The pool must recover on its own and the
      final matches must be byte-identical to the fault-free oracle;
      recovery latency comes from the supervision ledger
      (``stats()["pool"]["supervision"]["recovery"]``);
    * **degraded** — a deterministic poison *frame* kills its worker on
      every replay (``fires=0``) with quarantine disabled, so the worker
      exhausts its restart budget and — under ``on_irrecoverable="park"``
      — its streams are parked.  Throughput *while degraded* is recorded,
      the surviving streams are verified byte-identical to the oracle, and
      a final :meth:`~repro.streaming.pool.ShardWorkerPool.repair` with
      the plan uninstalled must bring the parked streams back to the full
      byte-identical report.
    """
    if smoke:
        num_feeds = min(num_feeds, 4)
        frames_per_feed = min(frames_per_feed, 60)
        workers = min(workers, 2)
    if workers < 2:
        raise ValueError(
            f"the chaos scenario needs at least 2 workers, got {workers}"
        )
    feeds, queries = bench_scenario(
        num_feeds, frames_per_feed, groups, queries_per_group, seed
    )
    events = list(interleave_feeds(feeds))
    total_frames = sum(relation.num_frames for relation in feeds.values())

    # --- oracle: the fault-free single-process router ---------------------
    router = StreamRouter(
        queries, method=method, batch_size=batch_size, restrict_labels=False
    )
    router.route_many(events)
    router.flush()
    oracle_reports = {
        sid: match_report({sid: router.matches_for(sid)})
        for sid in router.stream_ids()
    }
    oracle_report = match_report(
        {sid: router.matches_for(sid) for sid in router.stream_ids()}
    )

    # Tight supervision so the hang fault resolves in benchmark time; the
    # knobs themselves are part of the recorded scenario.
    supervision = SupervisionConfig(
        heartbeat_interval=0.05,
        slow_after=0.25,
        hang_after=1.0,
        escalation_timeout=5.0,
        backoff_base=0.01,
        backoff_cap=0.05,
        seed=seed,
    )

    def make_pool(on_irrecoverable: str = "raise", max_restarts: int = 3,
                  poison_threshold: Optional[int] = 2) -> ShardWorkerPool:
        knobs = supervision.to_dict()
        knobs["poison_threshold"] = poison_threshold
        return ShardWorkerPool(
            StreamRouter(
                queries, method=method, batch_size=batch_size,
                restrict_labels=False,
            ),
            num_workers=workers,
            dispatch_batch=dispatch_batch,
            checkpoint_every=checkpoint_every,
            max_restarts=max_restarts,
            supervision=knobs,
            on_irrecoverable=on_irrecoverable,
        )

    def timed_run(pool: ShardWorkerPool) -> float:
        start = time.perf_counter()
        pool.route_many(events)
        pool.flush()
        return time.perf_counter() - start

    def pool_report(pool: ShardWorkerPool) -> Dict:
        return match_report(
            {sid: pool.matches_for(sid) for sid in pool.stream_ids()}
        )

    def throughput(seconds: float) -> float:
        return round(total_frames / seconds, 2) if seconds else 0.0

    # --- fault-free pool: the throughput baseline -------------------------
    pool = make_pool()
    pool.start()
    try:
        baseline_seconds = timed_run(pool)
        if pool_report(pool) != oracle_report:
            raise AssertionError(
                "fault-free pool diverged from the router oracle"
            )
    except BaseException:
        pool.terminate()
        raise
    pool.stop()
    fault_free = {
        "seconds": round(baseline_seconds, 5),
        "aggregate_frames_per_sec": throughput(baseline_seconds),
    }

    # --- recovery: every recoverable fault kind, one seeded plan ----------
    plan = FaultPlan([
        Fault("sigkill", 0, after_ops=3),
        Fault("slow", 1, after_ops=2, delay=0.05, fires=2),
        Fault("stall", 0, after_ops=6),
        Fault("ckpt-fail", 1),
        Fault("hang", 1, after_ops=8),
    ], seed=seed)
    pool = make_pool()
    try:
        with plan.install():
            pool.start()
            recovery_seconds = timed_run(pool)
        if pool_report(pool) != oracle_report:
            raise AssertionError(
                "pool results diverged from the oracle after fault recovery"
            )
        stats = pool.stats()["pool"]
    except BaseException:
        pool.terminate()
        raise
    pool.stop()
    ledger = stats["supervision"]
    recovery = {
        "plan": [fault.to_dict() for fault in plan.faults],
        "faults_fired": sum(plan.fire_counts().values()),
        "seconds": round(recovery_seconds, 5),
        "aggregate_frames_per_sec": throughput(recovery_seconds),
        "slowdown_vs_fault_free": round(
            recovery_seconds / baseline_seconds, 2
        ) if baseline_seconds else 0.0,
        "restarts": stats["restarts"],
        "hang_escalations": sum(
            view["escalations"] for view in ledger["workers"]
        ),
        "checkpoint_failures": ledger["checkpoint_failures"],
        "backoff_seconds_total": ledger["backoff_seconds_total"],
        "recovery_latency": ledger["recovery"],
        "results_verified_identical": True,
    }
    if recovery["restarts"] < 1:
        raise AssertionError("the recovery plan caused no worker restart")

    # --- degraded mode: a poison frame parks its worker -------------------
    # The poison input: a frame of the first stream (worker 0 under
    # round-robin placement) that SIGKILLs the worker on every replay —
    # quarantine disabled, so the restart budget runs out and the worker's
    # streams are parked while the rest keep serving.
    poison_stream = next(iter(feeds))
    poison = FaultPlan([
        Fault(
            "sigkill", 0,
            frame=(poison_stream, frames_per_feed // 2),
            fires=0,
        ),
    ], seed=seed)
    pool = make_pool(
        on_irrecoverable="park", max_restarts=1, poison_threshold=None
    )
    try:
        with poison.install():
            pool.start()
            degraded_seconds = timed_run(pool)
        if not pool.degraded:
            raise AssertionError(
                "the poison plan did not drive the pool into degraded mode"
            )
        parked = pool.parked_streams()
        healthy = [
            sid for sid in pool.stream_ids() if sid not in parked
        ]
        if not healthy:
            raise AssertionError("degraded mode parked every stream")
        for sid in healthy:
            if match_report({sid: pool.matches_for(sid)}) != \
                    oracle_reports[sid]:
                raise AssertionError(
                    f"healthy stream {sid!r} diverged from the oracle "
                    "while the pool was degraded"
                )
        # The plan is uninstalled now (the operator cleared the cause):
        # repair respawns the parked worker, replays its journal fault-free
        # and must restore the full byte-identical report.
        repaired = pool.repair()
        pool.flush()
        if pool_report(pool) != oracle_report:
            raise AssertionError(
                "pool results diverged from the oracle after repair"
            )
    except BaseException:
        pool.terminate()
        raise
    pool.stop()
    degraded = {
        "poison_stream": poison_stream,
        "plan": [fault.to_dict() for fault in poison.faults],
        "seconds": round(degraded_seconds, 5),
        "aggregate_frames_per_sec": throughput(degraded_seconds),
        "parked_streams": sorted(parked),
        "parked_records": {sid: dict(parked[sid]) for sid in sorted(parked)},
        "healthy_streams": healthy,
        "healthy_streams_verified_identical": True,
        "repaired_streams": repaired,
        "post_repair_verified_identical": True,
    }

    chaos_report: Dict = {
        "scenario": "chaos",
        "method": method.value,
        "feeds": num_feeds,
        "frames_per_feed": frames_per_feed,
        "total_source_frames": total_frames,
        "queries": len(queries),
        "workers": workers,
        "seed": seed,
        "smoke": smoke,
        "cpus": _available_parallelism(),
        "supervision": supervision.to_dict(),
        "fault_free": fault_free,
        "recovery": recovery,
        "degraded": degraded,
        "results_verified_identical": True,
    }

    if output_path:
        chaos_report["__written_to__"] = _write_pool_bench_json(
            output_path, chaos_report, scenario_key="chaos"
        )
    return chaos_report


#: Window groups of the drift scenario (two groups keep the workload light —
#: the interesting axis is the self-managing trigger, not workload width).
DRIFT_GROUPS: Sequence[Tuple[int, int]] = ((24, 16), (36, 24))


def run_drift_benchmark(
    num_feeds: int = 6,
    frames_per_feed: int = 150,
    hot_factor: int = 4,
    phases: int = 2,
    groups: Sequence[Tuple[int, int]] = DRIFT_GROUPS,
    queries_per_group: int = 2,
    method: MCOSMethod = MCOSMethod.SSG,
    batch_size: int = 16,
    workers: int = DEFAULT_SCENARIO_WORKERS,
    dispatch_batch: int = 32,
    checkpoint_every: int = 16,
    seed: int = 7,
    smoke: bool = False,
    output_path: Optional[str] = "BENCH_pool.json",
) -> Dict:
    """The self-managing-pool scenario (``--bench pool --scenario drift``).

    A *drifting* hotspot — the hot camera feed changes identity mid-run
    (:func:`~repro.workloads.streams.drifting_hotspot_scenario`) — defeats
    any placement decision made at stream arrival: the layout that was
    right for phase 0 is wrong for phase 1.  Three runs over the identical
    event sequence exercise everything the pool can do about it on its
    own:

    * **auto_rebalance** — the pool with autonomous rebalance triggers
      armed (aggressive knobs so drift resolves in benchmark time).  The
      supervisor must fire at least once *by itself* — no caller ever
      invokes ``rebalance()`` — and the report records every trigger:
      what drifted (offered-load vs wall-clock-rate signal), the planned
      migrations, the convergence time (``rebalance_seconds``: flush
      barrier + checkpoint/ship/adopt round trips) and the post-trigger
      imbalance;
    * **shared_memory** — the identical workload dispatched through
      ``multiprocessing.shared_memory`` ring segments, diffed
      byte-identical against the default pickled-queue path;
    * **elastic** — grow from ``workers`` to ``workers + 2`` mid-run (new
      workers adopt via the restore-from-checkpoint path), rebalance onto
      the larger fleet, then shrink back (retiring workers' streams
      migrate to survivors) — all while serving.

    Every run's matches are verified byte-identical to the single-process
    router oracle; self-management never buys a single changed byte.
    """
    if smoke:
        num_feeds = min(num_feeds, 4)
        frames_per_feed = min(frames_per_feed, 60)
        workers = min(workers, 2)
    if workers < 2:
        raise ValueError(
            f"the drift scenario needs at least 2 workers, got {workers}"
        )
    if workers >= num_feeds:
        raise ValueError(
            f"the drift scenario needs more feeds than workers to create "
            f"placement contention, got {num_feeds} feeds for {workers} "
            "workers"
        )
    feeds, queries, hot_streams = drifting_hotspot_scenario(
        num_feeds, frames_per_feed, groups, queries_per_group, seed,
        hot_factor=hot_factor, phases=phases,
    )
    events = interleave_drifting(feeds, hot_streams, hot_factor)
    total_frames = sum(relation.num_frames for relation in feeds.values())

    # --- oracle: the single-process router --------------------------------
    router = StreamRouter(
        queries, method=method, batch_size=batch_size, restrict_labels=False
    )
    router.route_many(events)
    router.flush()
    oracle_report = match_report(
        {sid: router.matches_for(sid) for sid in router.stream_ids()}
    )

    def make_pool(**kwargs) -> ShardWorkerPool:
        return ShardWorkerPool(
            StreamRouter(
                queries, method=method, batch_size=batch_size,
                restrict_labels=False,
            ),
            num_workers=workers,
            dispatch_batch=dispatch_batch,
            checkpoint_every=checkpoint_every,
            **kwargs,
        )

    def verify(pool: ShardWorkerPool, label: str) -> None:
        actual = match_report(
            {sid: pool.matches_for(sid) for sid in pool.stream_ids()}
        )
        if actual != oracle_report:
            raise AssertionError(
                f"{label} pool matches diverged from the single-process "
                "router"
            )

    def throughput(seconds: float) -> float:
        return round(total_frames / seconds, 2) if seconds else 0.0

    # Aggressive trigger knobs: the benchmark run lasts fractions of a
    # second, so the production-scale defaults (multi-second windows)
    # would never evaluate.  The knobs are part of the recorded scenario.
    auto_knobs = {
        "watermark": 1.2,
        "interval": 0.02,
        "cooldown": 0.1,
        "min_frames": 32,
        "hysteresis": 1,
        "policy": "least-loaded",
    }

    # --- auto_rebalance: the supervisor fires on its own ------------------
    pool = make_pool(auto_rebalance=auto_knobs)
    pool.start()
    try:
        start = time.perf_counter()
        pool.route_many(events)
        pool.flush()
        auto_seconds = time.perf_counter() - start
        verify(pool, "auto-rebalance")
        stats = pool.stats()["pool"]
        final_loads = [load["frames"] for load in pool.worker_loads()]
    except BaseException:
        pool.terminate()
        raise
    pool.stop()
    ledger = stats["supervision"]["auto_rebalance"]
    if ledger["fired"] < 1:
        raise AssertionError(
            "the drifting hotspot never fired the autonomous rebalance "
            f"trigger ({ledger['evaluations']} drift evaluations, last "
            f"{ledger['last_drift']})"
        )
    auto = {
        "knobs": dict(auto_knobs),
        "seconds": round(auto_seconds, 5),
        "aggregate_frames_per_sec": throughput(auto_seconds),
        "drift_evaluations": ledger["evaluations"],
        "triggers_fired": ledger["fired"],
        "migrations_total": sum(
            event.get("migrations", 0) for event in ledger["events"]
        ),
        "convergence_seconds": [
            event["rebalance_seconds"]
            for event in ledger["events"]
            if "rebalance_seconds" in event
        ],
        "post_trigger_imbalance": [
            event["offered_ratio_after"]
            for event in ledger["events"]
            if "offered_ratio_after" in event
        ],
        "final_imbalance": _load_imbalance(final_loads),
        "events": [dict(event) for event in ledger["events"]],
        "results_verified_identical": True,
    }

    # --- shared_memory: ring-segment dispatch vs the pickled queues -------
    pool = make_pool(shared_memory=True)
    pool.start()
    try:
        start = time.perf_counter()
        pool.route_many(events)
        pool.flush()
        shm_seconds = time.perf_counter() - start
        verify(pool, "shared-memory")
        shm_stats = pool.stats()["pool"]["shared_memory"]
    except BaseException:
        pool.terminate()
        raise
    pool.stop()
    shared = {
        "seconds": round(shm_seconds, 5),
        "aggregate_frames_per_sec": throughput(shm_seconds),
        "enabled": shm_stats["enabled"],
        "dispatches": shm_stats["dispatches"],
        "fallbacks": shm_stats["fallbacks"],
        "results_verified_identical": True,
    }

    # --- elastic: grow mid-run, rebalance onto the larger fleet, shrink ---
    pool = make_pool()
    pool.start()
    try:
        third = len(events) // 3
        start = time.perf_counter()
        pool.route_many(events[:third])
        added = pool.grow(2)
        grow_plan = pool.rebalance(policy="least-loaded")
        pool.route_many(events[third:2 * third])
        retired = pool.shrink(2)
        pool.route_many(events[2 * third:])
        pool.flush()
        elastic_seconds = time.perf_counter() - start
        verify(pool, "elastic")
        elastic_stats = pool.stats()["pool"]["elastic"]
    except BaseException:
        pool.terminate()
        raise
    pool.stop()
    elastic = {
        "seconds": round(elastic_seconds, 5),
        "aggregate_frames_per_sec": throughput(elastic_seconds),
        "grown_workers": added,
        "migrations_onto_grown": len(grow_plan),
        "retired_workers": retired,
        "grown": elastic_stats["grown"],
        "shrunk": elastic_stats["shrunk"],
        "results_verified_identical": True,
    }

    drift_report: Dict = {
        "scenario": "drift",
        "method": method.value,
        "feeds": num_feeds,
        "frames_per_feed": frames_per_feed,
        "hot_streams": list(hot_streams),
        "hot_factor": hot_factor,
        "phases": phases,
        "total_source_frames": total_frames,
        "queries": len(queries),
        "workers": workers,
        "seed": seed,
        "smoke": smoke,
        "cpus": _available_parallelism(),
        "auto_rebalance": auto,
        "shared_memory": shared,
        "elastic": elastic,
        "results_verified_identical": True,
    }

    if output_path:
        drift_report["__written_to__"] = _write_pool_bench_json(
            output_path, drift_report, scenario_key="drift"
        )
    return drift_report


def render_drift_report(report: Dict) -> str:
    """Plain-text table of the drift (self-managing pool) report."""
    auto = report["auto_rebalance"]
    shared = report["shared_memory"]
    elastic = report["elastic"]
    convergence = auto["convergence_seconds"]
    post = auto["post_trigger_imbalance"]
    lines = [
        f"pool drift benchmark  method={report['method']}  "
        f"feeds={report['feeds']} (hot x{report['hot_factor']}, "
        f"{report['phases']} phases: {'->'.join(report['hot_streams'])})  "
        f"workers={report['workers']}  cpus={report['cpus']}",
        f"{'run':24s} {'seconds':>9s} {'frames/s':>10s}",
        f"{'auto-rebalance':24s} {auto['seconds']:9.3f} "
        f"{auto['aggregate_frames_per_sec']:10.1f}",
        f"{'shared-memory dispatch':24s} {shared['seconds']:9.3f} "
        f"{shared['aggregate_frames_per_sec']:10.1f}",
        f"{'elastic grow/shrink':24s} {elastic['seconds']:9.3f} "
        f"{elastic['aggregate_frames_per_sec']:10.1f}",
        f"auto: {auto['triggers_fired']} autonomous trigger(s) over "
        f"{auto['drift_evaluations']} evaluations, "
        f"{auto['migrations_total']} migration(s), convergence "
        f"{convergence}s, post-trigger imbalance {post} "
        f"(final {auto['final_imbalance']})",
        f"shm: {shared['dispatches']} ring dispatch(es), "
        f"{shared['fallbacks']} queue fallback(s)",
        f"elastic: grew {elastic['grown_workers']} "
        f"({elastic['migrations_onto_grown']} migrations onto them), "
        f"retired {elastic['retired_workers']}",
        "matches byte-identical to the single-process oracle on every run",
    ]
    return "\n".join(lines)


def render_chaos_report(report: Dict) -> str:
    """Plain-text table of the chaos (fault-recovery) report."""
    recovery = report["recovery"]
    degraded = report["degraded"]
    latency = recovery["recovery_latency"]
    lines = [
        f"pool chaos benchmark  method={report['method']}  "
        f"feeds={report['feeds']}x{report['frames_per_feed']}f  "
        f"workers={report['workers']}  cpus={report['cpus']}",
        f"{'run':24s} {'seconds':>9s} {'frames/s':>10s}",
        f"{'fault-free':24s} {report['fault_free']['seconds']:9.3f} "
        f"{report['fault_free']['aggregate_frames_per_sec']:10.1f}",
        f"{'recovery (faults live)':24s} {recovery['seconds']:9.3f} "
        f"{recovery['aggregate_frames_per_sec']:10.1f}",
        f"{'degraded (1 worker down)':24s} {degraded['seconds']:9.3f} "
        f"{degraded['aggregate_frames_per_sec']:10.1f}",
        f"recovery: {recovery['restarts']} restart(s), "
        f"{recovery['hang_escalations']} hang escalation(s), "
        f"{recovery['checkpoint_failures']} checkpoint failure(s), "
        f"latency mean {latency['mean_seconds']}s / max "
        f"{latency['max_seconds']}s over {latency['count']} recoveries",
        f"degraded: parked {degraded['parked_streams']} "
        f"(poison {degraded['poison_stream']!r}), healthy streams "
        "byte-identical, repair restored the full report",
    ]
    return "\n".join(lines)


def render_pool_report(report: Dict) -> str:
    """Plain-text table of the pool benchmark report."""
    lines = [
        f"pool benchmark  method={report['method']}  "
        f"feeds={report['feeds']}x{report['frames_per_feed']}f  "
        f"queries={report['queries']} in {report['window_groups']} window groups  "
        f"cpus={report['cpus']}",
        f"{'configuration':34s} {'units':>8s} {'seconds':>9s} {'frames/s':>10s}",
    ]
    for key in ("sequential_per_query", "sequential", "router", "pool"):
        entry = report[key]
        units = entry.get("engine_runs", entry.get("shards", entry.get("workers", 0)))
        lines.append(
            f"{key:34s} {units:8d} {entry['seconds']:9.3f} "
            f"{entry['aggregate_frames_per_sec']:10.1f}"
        )
    lines.append(
        f"pool speedup vs router: {report['speedup_vs_router']}x   "
        f"vs sequential: {report['speedup_vs_sequential']}x   "
        f"vs per-query sequential: {report['speedup_vs_sequential_per_query']}x"
    )
    if "note" in report:
        lines.append(f"note: {report['note']}")
    return "\n".join(lines)


def render_report(report: Dict) -> str:
    """Plain-text table of the benchmark report."""
    lines = [
        f"streaming benchmark  method={report['method']}  "
        f"feeds={report['feeds']}x{report['frames_per_feed']}f  "
        f"queries={report['queries']} in {report['window_groups']} window groups",
        f"{'configuration':34s} {'engines':>8s} {'seconds':>9s} {'frames/s':>10s}",
    ]
    for key in ("baseline", "grouped_baseline", "router"):
        entry = report[key]
        engines = entry.get("engine_runs", entry.get("shards", 0))
        lines.append(
            f"{key:34s} {engines:8d} {entry['seconds']:9.3f} "
            f"{entry['aggregate_frames_per_sec']:10.1f}"
        )
    lines.append(
        f"speedup vs per-query baseline: {report['speedup_vs_baseline']}x   "
        f"vs grouped baseline: {report['speedup_vs_grouped_baseline']}x"
    )
    return "\n".join(lines)
