"""Streaming runtime benchmark: StreamRouter vs sequential single-engine runs.

Simulates ``N`` camera feeds answering one mixed query workload whose queries
span several ``(window, duration)`` groups and compares two ways of serving
it, writing a ``BENCH_streaming.json`` report:

* **baseline** — the workflow without the router: every query runs in its own
  engine over every feed, sequentially.  This is what
  :class:`~repro.engine.config.EngineConfig`'s "queries with differing
  windows should be run in separate engine instances" caveat leaves a user
  with, since grouping by hand is exactly what the router automates;
* **router** — one :class:`~repro.streaming.router.StreamRouter` ingesting
  the interleaved feeds.  Queries sharing a window group also share one MCOS
  generation pass per stream, so the state-maintenance work drops from one
  pass per (feed, query) to one per (feed, group).

Both sides answer the same workload over the same frames and are verified to
produce identical matches before any number is reported.  Label projection
(``restrict_labels``) is disabled on every configuration: a single-query
engine would otherwise project frames onto *its* query's classes while a
grouped engine projects onto the group union, making per-query answers
legitimately differ — with projection off, per-query matches are invariant
to grouping and the verification is exact.  (The simulated feeds only emit
the four classes the workload queries anyway, so projection would be a
no-op here.)  The headline
``aggregate_frames_per_sec`` is *source* frames served per second — feeds
times frames per feed, divided by wall seconds — i.e. how fast each
architecture drains the same fleet of camera feeds.

A ``grouped_baseline`` (one engine per (feed, group), sequential, no router
machinery) is reported as well: it isolates how much of the win is the
auto-grouping (all of it) versus router overhead (batching and the reorder
buffer cost a few percent, which the comparison makes visible).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.config import EngineConfig, MCOSMethod
from repro.engine.engine import TemporalVideoQueryEngine
from repro.streaming.router import StreamRouter, group_queries_by_window
from repro.workloads.streams import (
    interleave_feeds,
    multi_window_workload,
    simulated_feeds,
)

#: Window groups of the default workload (scaled paper-style parameters).
DEFAULT_GROUPS: Sequence[Tuple[int, int]] = ((24, 16), (36, 24), (48, 32))

#: Queries per window group in the default workload.
DEFAULT_QUERIES_PER_GROUP = 4

#: Simulated camera feeds (the acceptance configuration).
DEFAULT_FEEDS = 8

#: Frames per simulated feed.
DEFAULT_FRAMES = 400


def run_streaming_benchmark(
    num_feeds: int = DEFAULT_FEEDS,
    frames_per_feed: int = DEFAULT_FRAMES,
    groups: Sequence[Tuple[int, int]] = DEFAULT_GROUPS,
    queries_per_group: int = DEFAULT_QUERIES_PER_GROUP,
    method: MCOSMethod = MCOSMethod.SSG,
    batch_size: int = 16,
    seed: int = 7,
    output_path: Optional[str] = "BENCH_streaming.json",
) -> Dict:
    """Run the comparison and return (and optionally write) the report."""
    if num_feeds <= 0 or frames_per_feed <= 0:
        raise ValueError(
            f"num_feeds and frames_per_feed must be positive, got "
            f"{num_feeds} and {frames_per_feed}"
        )
    feeds = simulated_feeds(num_feeds, seed=seed, num_frames=frames_per_feed)
    # Global query ids up-front so baseline and router matches carry the same
    # query_id and can be compared verbatim.
    queries = [
        query.with_id(index)
        for index, query in enumerate(
            multi_window_workload(
                list(groups), queries_per_group=queries_per_group, seed=seed
            )
        )
    ]
    total_frames = sum(relation.num_frames for relation in feeds.values())

    # --- baseline: one engine per (feed, query), sequential ---------------
    baseline_matches: Dict[Tuple[str, int], list] = {}
    start = time.perf_counter()
    for stream_id, relation in feeds.items():
        for query in queries:
            engine = TemporalVideoQueryEngine(
                [query],
                EngineConfig(
                    method=method,
                    window_size=query.window,
                    duration=query.duration,
                    restrict_labels=False,
                ),
            )
            run = engine.run(relation)
            baseline_matches[(stream_id, query.query_id)] = run.matches
    baseline_seconds = time.perf_counter() - start

    # --- grouped baseline: one engine per (feed, window group) ------------
    grouped = group_queries_by_window(queries)
    grouped_matches: Dict[str, List] = {stream_id: [] for stream_id in feeds}
    start = time.perf_counter()
    for stream_id, relation in feeds.items():
        for (window, duration), group_queries in grouped.items():
            engine = TemporalVideoQueryEngine(
                group_queries,
                EngineConfig(
                    method=method,
                    window_size=window,
                    duration=duration,
                    restrict_labels=False,
                ),
            )
            grouped_matches[stream_id].extend(engine.run(relation).matches)
    grouped_seconds = time.perf_counter() - start

    # --- router: auto-grouped shards over the interleaved feeds -----------
    router = StreamRouter(
        queries, method=method, batch_size=batch_size, restrict_labels=False
    )
    events = list(interleave_feeds(feeds))
    start = time.perf_counter()
    router.route_many(events)
    router.flush()
    router_seconds = time.perf_counter() - start

    _verify_equivalence(router, feeds, baseline_matches, grouped_matches)

    def throughput(seconds: float) -> float:
        return round(total_frames / seconds, 2) if seconds else 0.0

    router_stats = router.stats()
    report: Dict = {
        "benchmark": "streaming",
        "method": method.value,
        "feeds": num_feeds,
        "frames_per_feed": frames_per_feed,
        "total_source_frames": total_frames,
        "queries": len(queries),
        "window_groups": len(grouped),
        "batch_size": batch_size,
        "seed": seed,
        "baseline": {
            "description": "one engine per (feed, query), sequential",
            "engine_runs": num_feeds * len(queries),
            "seconds": round(baseline_seconds, 5),
            "aggregate_frames_per_sec": throughput(baseline_seconds),
        },
        "grouped_baseline": {
            "description": "one engine per (feed, window group), sequential",
            "engine_runs": num_feeds * len(grouped),
            "seconds": round(grouped_seconds, 5),
            "aggregate_frames_per_sec": throughput(grouped_seconds),
        },
        "router": {
            "description": "StreamRouter, auto-grouped per-(stream, group) shards",
            "shards": router_stats["shards"],
            "seconds": round(router_seconds, 5),
            "aggregate_frames_per_sec": throughput(router_seconds),
            "ingest_totals": router_stats["totals"],
        },
        "speedup_vs_baseline": round(baseline_seconds / router_seconds, 2)
        if router_seconds else 0.0,
        "speedup_vs_grouped_baseline": round(grouped_seconds / router_seconds, 2)
        if router_seconds else 0.0,
        "results_verified_identical": True,
    }

    if output_path:
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2)
        report["__written_to__"] = os.path.abspath(output_path)
    return report


def _verify_equivalence(
    router: StreamRouter,
    feeds: Dict,
    baseline_matches: Dict,
    grouped_matches: Dict,
) -> None:
    """Assert all three configurations answered the workload identically.

    Matches are compared per (stream, query) against the dedicated
    single-query engines: both the router's and the grouped baseline's
    matches are split by query id and must equal the per-query engine's
    list.  A silent divergence here would make the speedups meaningless, so
    this raises instead of reporting.
    """
    def split_by_query(matches) -> Dict[int, List]:
        per_query: Dict[int, List] = {
            query.query_id: [] for query in router.queries
        }
        for match in matches:
            per_query[match.query_id].append(match)
        return per_query

    for stream_id in feeds:
        contenders = {
            "router": split_by_query(router.matches_for(stream_id)),
            "grouped baseline": split_by_query(grouped_matches[stream_id]),
        }
        for query in router.queries:
            expected = baseline_matches[(stream_id, query.query_id)]
            for label, per_query in contenders.items():
                actual = per_query[query.query_id]
                if actual != expected:
                    raise AssertionError(
                        f"{label} diverged from the dedicated engine on "
                        f"stream {stream_id!r}, query {query.query_id} "
                        f"({len(actual)} vs {len(expected)} matches)"
                    )


def render_report(report: Dict) -> str:
    """Plain-text table of the benchmark report."""
    lines = [
        f"streaming benchmark  method={report['method']}  "
        f"feeds={report['feeds']}x{report['frames_per_feed']}f  "
        f"queries={report['queries']} in {report['window_groups']} window groups",
        f"{'configuration':34s} {'engines':>8s} {'seconds':>9s} {'frames/s':>10s}",
    ]
    for key in ("baseline", "grouped_baseline", "router"):
        entry = report[key]
        engines = entry.get("engine_runs", entry.get("shards", 0))
        lines.append(
            f"{key:34s} {engines:8d} {entry['seconds']:9.3f} "
            f"{entry['aggregate_frames_per_sec']:10.1f}"
        )
    lines.append(
        f"speedup vs per-query baseline: {report['speedup_vs_baseline']}x   "
        f"vs grouped baseline: {report['speedup_vs_grouped_baseline']}x"
    )
    return "\n".join(lines)
