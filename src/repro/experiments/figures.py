"""One experiment definition per table/figure of the paper's evaluation.

Every function reproduces the corresponding experiment of Section 6 and
returns an :class:`~repro.experiments.harness.ExperimentResult` whose series
can be rendered with :mod:`repro.experiments.report`.

All functions accept a ``scale`` parameter: 1.0 reproduces the paper's full
datasets and parameter values; smaller values shrink both the datasets and the
window/duration parameters proportionally so the experiments complete quickly
(used by the pytest benchmarks).  Shapes -- which method wins where, how the
curves move with each parameter -- are preserved under scaling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datasets.occlusion import reuse_object_ids
from repro.datasets.registry import DATASET_NAMES, load_dataset, load_relation
from repro.datasets.statistics import DatasetStatistics, dataset_statistics
from repro.engine.config import MCOSMethod
from repro.experiments.harness import (
    MCOS_METHODS,
    ExperimentResult,
    MethodTiming,
    run_query_evaluation,
    time_mcos_generation,
)
from repro.workloads.generator import ge_only_workload, random_cnf_workload

#: Default parameters of the paper (Section 6.2): w = 300 frames, d = 240.
DEFAULT_WINDOW = 300
DEFAULT_DURATION = 240


def _scaled(value: int, scale: float, minimum: int = 10) -> int:
    """Scale a frame-count parameter, keeping it at least ``minimum``."""
    return max(minimum, int(round(value * scale)))


def _window_duration(scale: float) -> Tuple[int, int]:
    return _scaled(DEFAULT_WINDOW, scale), _scaled(DEFAULT_DURATION, scale, minimum=8)


# ----------------------------------------------------------------------
# Table 6
# ----------------------------------------------------------------------
def table6_statistics(
    datasets: Sequence[str] = DATASET_NAMES, scale: float = 1.0
) -> List[DatasetStatistics]:
    """Reproduce Table 6: dataset statistics after detection and tracking."""
    return [
        dataset_statistics(load_relation(name, scale=scale), name)
        for name in datasets
    ]


# ----------------------------------------------------------------------
# Figure 4: varying the total number of frames
# ----------------------------------------------------------------------
def figure4_total_frames(
    datasets: Sequence[str] = DATASET_NAMES,
    scale: float = 1.0,
    num_points: int = 4,
    methods: Sequence[MCOSMethod] = MCOS_METHODS,
) -> ExperimentResult:
    """MCOS generation time as the number of processed frames grows."""
    window, duration = _window_duration(scale)
    result = ExperimentResult(
        "figure4",
        "MCOS generation time vs. total number of frames "
        f"(w={window}, d={duration})",
    )
    for name in datasets:
        relation = load_relation(name, scale=scale)
        total = relation.num_frames
        points = [
            max(window, int(round(total * (i + 1) / num_points)))
            for i in range(num_points)
        ]
        for frames in points:
            prefix = relation.prefix(frames)
            for method in methods:
                timing = time_mcos_generation(prefix, method, window, duration)
                timing.parameter = "frames"
                timing.value = frames
                timing.dataset = name
                result.add(timing)
    return result


# ----------------------------------------------------------------------
# Figure 5: varying the duration threshold d
# ----------------------------------------------------------------------
def figure5_duration(
    datasets: Sequence[str] = DATASET_NAMES,
    scale: float = 1.0,
    durations: Optional[Sequence[int]] = None,
    methods: Sequence[MCOSMethod] = MCOS_METHODS,
) -> ExperimentResult:
    """MCOS generation time as the duration threshold varies (180..270)."""
    window, _ = _window_duration(scale)
    if durations is None:
        durations = [_scaled(d, scale, minimum=4) for d in (180, 210, 240, 270)]
    result = ExperimentResult(
        "figure5", f"MCOS generation time vs. duration d (w={window})"
    )
    for name in datasets:
        relation = load_relation(name, scale=scale)
        for duration in durations:
            for method in methods:
                timing = time_mcos_generation(relation, method, window, duration)
                timing.parameter = "duration"
                timing.value = duration
                timing.dataset = name
                result.add(timing)
    return result


# ----------------------------------------------------------------------
# Figure 6: varying the window size w
# ----------------------------------------------------------------------
def figure6_window_size(
    datasets: Sequence[str] = DATASET_NAMES,
    scale: float = 1.0,
    windows: Optional[Sequence[int]] = None,
    methods: Sequence[MCOSMethod] = MCOS_METHODS,
) -> ExperimentResult:
    """MCOS generation time as the window size varies (300..600), d fixed."""
    _, duration = _window_duration(scale)
    if windows is None:
        windows = [_scaled(w, scale) for w in (300, 400, 500, 600)]
    result = ExperimentResult(
        "figure6", f"MCOS generation time vs. window size w (d={duration})"
    )
    for name in datasets:
        relation = load_relation(name, scale=scale)
        for window in windows:
            for method in methods:
                timing = time_mcos_generation(relation, method, window, duration)
                timing.parameter = "window"
                timing.value = window
                timing.dataset = name
                result.add(timing)
    return result


# ----------------------------------------------------------------------
# Figure 7: varying the occlusion parameter po
# ----------------------------------------------------------------------
def figure7_occlusion(
    datasets: Sequence[str] = DATASET_NAMES,
    scale: float = 1.0,
    po_values: Sequence[int] = (0, 1, 2, 3),
    methods: Sequence[MCOSMethod] = MCOS_METHODS,
) -> ExperimentResult:
    """MCOS generation time as object ids are reused up to ``po`` times."""
    window, duration = _window_duration(scale)
    result = ExperimentResult(
        "figure7",
        f"MCOS generation time vs. occlusion parameter po (w={window}, d={duration})",
    )
    for name in datasets:
        relation = load_relation(name, scale=scale)
        for po in po_values:
            augmented = reuse_object_ids(relation, po, seed=po)
            augmented.name = name
            for method in methods:
                # The figure compares timings across po values, so keep the
                # best of two runs per point (single shots hand later points
                # a noisier process).
                timing = time_mcos_generation(
                    augmented, method, window, duration, repeats=2
                )
                timing.parameter = "po"
                timing.value = po
                timing.dataset = name
                result.add(timing)
    return result


# ----------------------------------------------------------------------
# Figure 8: varying the number of queries
# ----------------------------------------------------------------------
def figure8_query_count(
    datasets: Sequence[str] = ("V1", "M2"),
    scale: float = 1.0,
    query_counts: Sequence[int] = (10, 20, 30, 40, 50),
    methods: Sequence[MCOSMethod] = MCOS_METHODS,
) -> ExperimentResult:
    """End-to-end (MCOS + query evaluation) time vs. number of CNF queries."""
    window, duration = _window_duration(scale)
    result = ExperimentResult(
        "figure8",
        "MCOS generation + query evaluation time vs. number of queries "
        f"(w={window}, d={duration})",
    )
    for name in datasets:
        relation = load_relation(name, scale=scale)
        for count in query_counts:
            workload = random_cnf_workload(
                count, window=window, duration=duration, seed=count
            )
            for method in methods:
                timing = run_query_evaluation(
                    relation, workload.queries, method, window, duration
                )
                timing.parameter = "queries"
                timing.value = count
                timing.dataset = name
                result.add(timing)
    return result


# ----------------------------------------------------------------------
# Figure 9: varying n_min for >=-only workloads (pruning study)
# ----------------------------------------------------------------------
def figure9_nmin(
    datasets: Sequence[str] = ("D1", "D2", "M1", "M2"),
    scale: float = 1.0,
    nmin_values: Sequence[int] = (1, 3, 5, 7, 9),
    num_queries: int = 100,
) -> ExperimentResult:
    """Compare NAIVE_E/MFS_E/SSG_E with the pruning variants MFS_O/SSG_O."""
    window, duration = _window_duration(scale)
    result = ExperimentResult(
        "figure9",
        "Query evaluation with >=-only workloads: CNFEvalE only (_E) vs. "
        f"Proposition-1 pruning (_O), w={window}, d={duration}",
    )
    configurations = [
        (MCOSMethod.NAIVE, False),
        (MCOSMethod.MFS, False),
        (MCOSMethod.SSG, False),
        (MCOSMethod.MFS, True),
        (MCOSMethod.SSG, True),
    ]
    for name in datasets:
        relation = load_relation(name, scale=scale)
        for nmin in nmin_values:
            workload = ge_only_workload(
                num_queries, n_min=nmin, window=window, duration=duration, seed=nmin
            )
            for method, pruning in configurations:
                # The figure's point is the _O-vs-_E ordering, so time each
                # variant best-of-3: the variants run sequentially and a
                # single shot systematically penalises the later ones.
                timing = run_query_evaluation(
                    relation,
                    workload.queries,
                    method,
                    window,
                    duration,
                    enable_pruning=pruning,
                    repeats=3,
                )
                suffix = "_O" if pruning else "_E"
                timing.method = f"{method.value}{suffix}"
                timing.parameter = "nmin"
                timing.value = nmin
                timing.dataset = name
                result.add(timing)
    return result


# ----------------------------------------------------------------------
# Figure 10: end-to-end evaluation time per dataset
# ----------------------------------------------------------------------
def figure10_end_to_end(
    datasets: Sequence[str] = DATASET_NAMES,
    scale: float = 1.0,
    num_queries: int = 50,
    methods: Sequence[MCOSMethod] = MCOS_METHODS,
) -> ExperimentResult:
    """Average per-query end-to-end time including detection and tracking."""
    window, duration = _window_duration(scale)
    result = ExperimentResult(
        "figure10",
        "End-to-end average time per query (detection + tracking + MCOS + "
        f"evaluation), {num_queries} queries, w={window}, d={duration}",
    )
    for name in datasets:
        pipeline_result = load_dataset(name, scale=scale)
        relation = pipeline_result.relation
        workload = random_cnf_workload(
            num_queries, window=window, duration=duration, seed=7
        )
        for method in methods:
            timing = run_query_evaluation(
                relation, workload.queries, method, window, duration
            )
            # The detection/tracking cost is shared by all queries of a
            # workload; Figure 10 reports the average per-query total time.
            total = timing.seconds + pipeline_result.total_seconds
            timing.seconds = total / num_queries
            timing.parameter = "dataset"
            timing.value = name
            timing.dataset = name
            result.add(timing)
    return result
