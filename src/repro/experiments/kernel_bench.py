"""Kernel fast-path benchmark: frames/sec of MCOS generation per method.

Times NAIVE / MFS / SSG state maintenance over the registry scenes used by
the Figure-10 end-to-end comparison and writes a ``BENCH_kernel.json``
perf-trajectory file.  When a recorded seed baseline
(``benchmarks/BENCH_kernel_seed.json``, captured from the pre-kernel tree
with the same methodology) is present, per-dataset and aggregate speedups
are included, so the file documents the fast-path kernel's gain over time.

Run it either way::

    python benchmarks/perf_kernel.py
    python -m repro.experiments --bench kernel

Methodology: each (dataset, method) pair is timed ``repeats`` times on the
same cached relation and the best run is kept (the interpreter and machine
only add noise, never speed); the ``fig10_stream`` aggregate is total frames
divided by total best seconds across the datasets, i.e. the throughput of
the combined stream.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Sequence

from repro.core.arraykernel import select_kernel
from repro.datasets.registry import load_relation
from repro.engine.config import MCOSMethod
from repro.experiments.figures import _window_duration
from repro.experiments.harness import MCOS_METHODS, time_mcos_generation

#: Datasets of the default benchmark configuration (the fig10 bench subset).
DEFAULT_DATASETS: Sequence[str] = ("V1", "D2", "M2")

#: Default scene/parameter scale (matches the experiments' fast default).
DEFAULT_SCALE = 0.25

#: Where the recorded seed baseline lives, relative to the repo root.
SEED_BASELINE = os.path.join("benchmarks", "BENCH_kernel_seed.json")


def run_kernel_benchmark(
    scale: float = DEFAULT_SCALE,
    datasets: Sequence[str] = DEFAULT_DATASETS,
    repeats: int = 3,
    methods: Sequence[MCOSMethod] = MCOS_METHODS,
    output_path: Optional[str] = "BENCH_kernel.json",
    baseline_path: Optional[str] = None,
) -> Dict:
    """Time every method over every dataset and return (and write) the report.

    Parameters mirror the CLI flags of ``benchmarks/perf_kernel.py``.  Pass
    ``output_path=None`` to skip writing the JSON file.
    """
    window, duration = _window_duration(scale)
    kernel_backend = select_kernel()
    report: Dict = {
        "benchmark": "kernel",
        "scale": scale,
        "window": window,
        "duration": duration,
        "repeats": repeats,
        # Which SSG inner-loop backend ran (repro.core.arraykernel): "array"
        # when numpy vectorisation was active, "python" for the pure-Python
        # oracle.  Both produce byte-identical results; only speed differs.
        "kernel_backend": kernel_backend,
        "datasets": {},
    }
    totals: Dict[str, Dict[str, float]] = {
        method.value: {"frames": 0, "seconds": 0.0} for method in methods
    }
    for name in datasets:
        relation = load_relation(name, scale=scale)
        entry: Dict = {"frames": relation.num_frames, "methods": {}}
        for method in methods:
            best = None
            for _ in range(max(1, repeats)):
                timing = time_mcos_generation(relation, method, window, duration)
                if best is None or timing.seconds < best.seconds:
                    best = timing
            fps = relation.num_frames / best.seconds if best.seconds else 0.0
            entry["methods"][method.value] = {
                "seconds": round(best.seconds, 5),
                "frames_per_sec": round(fps, 2),
                "result_states": best.result_states,
                "stats": best.stats.as_dict(),
            }
            if method is MCOSMethod.SSG:
                entry["methods"][method.value]["kernel"] = kernel_backend
            totals[method.value]["frames"] += relation.num_frames
            totals[method.value]["seconds"] += best.seconds
        report["datasets"][name] = entry

    report["fig10_stream"] = {
        method: {
            "frames": tot["frames"],
            "seconds": round(tot["seconds"], 5),
            "frames_per_sec": round(tot["frames"] / tot["seconds"], 2)
            if tot["seconds"] else 0.0,
        }
        for method, tot in totals.items()
    }

    report["verification"] = _verify_dual_backend(
        report, scale=scale, datasets=datasets, methods=methods,
        window=window, duration=duration,
    )

    baseline = _load_baseline(baseline_path)
    if baseline is not None:
        speedups = _speedups(report, baseline)
        if speedups is not None:
            report["seed_baseline_path"] = baseline.get("__path__")
            report["speedup_vs_seed"] = speedups

    if output_path:
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2)
        report["__written_to__"] = os.path.abspath(output_path)
    return report


def _verify_dual_backend(
    report: Dict,
    scale: float,
    datasets: Sequence[str],
    methods: Sequence[MCOSMethod],
    window: int,
    duration: int,
) -> Dict:
    """Re-run SSG on the pure-Python oracle and diff against the timed run.

    The array kernel's contract is byte-identical results, so the bench
    that advertises its speed also proves its correctness on the exact
    datasets it timed: ``result_states`` and the full ``GeneratorStats``
    must match the oracle's per dataset.  Mirrors the serve bench, where
    the exit code reflects verification, not just completion.
    """
    if MCOSMethod.SSG not in methods:
        return {"checked": False, "ok": True, "reason": "SSG not benchmarked"}
    if report["kernel_backend"] != "array":
        return {
            "checked": False,
            "ok": True,
            "reason": "array backend not active; timed run already used "
                      "the pure-Python oracle",
        }
    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = "python"
    try:
        mismatches = []
        checked: Dict[str, Dict] = {}
        for name in datasets:
            relation = load_relation(name, scale=scale)
            oracle = time_mcos_generation(
                relation, MCOSMethod.SSG, window, duration
            )
            timed = report["datasets"][name]["methods"][MCOSMethod.SSG.value]
            entry = {
                "result_states": oracle.result_states,
                "stats_match": oracle.stats.as_dict() == timed["stats"],
            }
            checked[name] = entry
            if timed["result_states"] != oracle.result_states:
                mismatches.append(
                    f"{name}: result_states {timed['result_states']} (array) "
                    f"!= {oracle.result_states} (python)"
                )
            if not entry["stats_match"]:
                mismatches.append(
                    f"{name}: GeneratorStats diverge between backends"
                )
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous
    return {
        "checked": True,
        "ok": not mismatches,
        "backend": "array",
        "reference": "python",
        "datasets": checked,
        "mismatches": mismatches,
    }


def _load_baseline(baseline_path: Optional[str]) -> Optional[Dict]:
    """Load the recorded seed baseline, looking in the usual places."""
    candidates = [baseline_path] if baseline_path else [
        SEED_BASELINE,
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), SEED_BASELINE),
    ]
    for candidate in candidates:
        if candidate and os.path.exists(candidate):
            with open(candidate) as handle:
                baseline = json.load(handle)
            baseline["__path__"] = candidate
            return baseline
    return None


def _speedups(report: Dict, baseline: Dict) -> Optional[Dict]:
    """Frames/sec ratios (current / seed) per dataset/method plus aggregate.

    Ratios are only meaningful when the run configuration matches the
    baseline's, so a mismatched scale skips the comparison entirely and the
    aggregate is only reported when the dataset sets coincide.
    """
    if baseline.get("scale") != report["scale"]:
        return None
    speedups: Dict = {"datasets": {}}
    for name, entry in report["datasets"].items():
        base_entry = baseline.get("datasets", {}).get(name)
        if not base_entry:
            continue
        per_method = {}
        for method, data in entry["methods"].items():
            base = base_entry.get("methods", {}).get(method)
            if base and base.get("frames_per_sec"):
                per_method[method] = round(
                    data["frames_per_sec"] / base["frames_per_sec"], 2
                )
        speedups["datasets"][name] = per_method
    base_stream = baseline.get("fig10_stream")
    if base_stream and set(report["datasets"]) == set(baseline.get("datasets", {})):
        aggregate = {}
        for method, data in report["fig10_stream"].items():
            base = base_stream.get(method)
            if base and base.get("frames_per_sec"):
                aggregate[method] = round(
                    data["frames_per_sec"] / base["frames_per_sec"], 2
                )
        speedups["fig10_stream"] = aggregate
    return speedups


def render_report(report: Dict) -> str:
    """Plain-text table of the benchmark report."""
    lines = [
        f"kernel benchmark  scale={report['scale']}  "
        f"w={report['window']} d={report['duration']}  "
        f"ssg-kernel={report.get('kernel_backend', 'python')}  "
        f"(best of {report['repeats']})",
        f"{'dataset':9s} {'method':7s} {'seconds':>9s} {'frames/s':>10s}"
        f" {'speedup':>8s}",
    ]
    speedups = report.get("speedup_vs_seed", {})
    for name, entry in report["datasets"].items():
        for method, data in entry["methods"].items():
            ratio = speedups.get("datasets", {}).get(name, {}).get(method)
            lines.append(
                f"{name:9s} {method:7s} {data['seconds']:9.3f} "
                f"{data['frames_per_sec']:10.1f} "
                f"{(str(ratio) + 'x') if ratio else '-':>8s}"
            )
    verification = report.get("verification")
    if verification is not None:
        if not verification.get("checked"):
            lines.append(f"verification: skipped ({verification.get('reason')})")
        elif verification["ok"]:
            lines.append(
                "verification: array kernel matches python oracle on "
                f"{len(verification['datasets'])} dataset(s)"
            )
        else:
            lines.append("verification: FAILED")
            for mismatch in verification["mismatches"]:
                lines.append(f"  {mismatch}")
    lines.append("")
    for method, data in report["fig10_stream"].items():
        ratio = speedups.get("fig10_stream", {}).get(method)
        lines.append(
            f"fig10-stream {method:7s} {data['seconds']:9.3f} "
            f"{data['frames_per_sec']:10.1f} "
            f"{(str(ratio) + 'x') if ratio else '-':>8s}"
        )
    return "\n".join(lines)
