"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments              # fast, scaled-down run
    python -m repro.experiments --scale 1.0  # full-size run (slow)
    python -m repro.experiments --only figure9 figure10

The output is a plain-text report with one table per dataset per experiment,
mirroring the series plotted in the paper's figures.
"""

from __future__ import annotations

import argparse
import sys
import time

#: Names of the figure experiments the default (no ``--bench``) run covers.
#: They resolve to callables lazily inside :func:`main` because the figures
#: stack needs the numpy-backed dataset simulator, while the streaming and
#: pool benchmarks must stay runnable on machines without numpy.
EXPERIMENT_NAMES = (
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
)


def main(argv=None) -> int:
    """Run the requested experiments and print their report tables."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="dataset / parameter scale (1.0 = paper size)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiments (e.g. table6 figure9)")
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="restrict to these datasets (e.g. V1 M2)")
    parser.add_argument("--bench",
                        choices=["kernel", "streaming", "pool", "serve"],
                        default=None,
                        help="run a micro-benchmark instead of the figures "
                             "(kernel: MCOS generation frames/sec, writes "
                             "BENCH_kernel.json; streaming: StreamRouter vs "
                             "sequential single-engine runs over simulated "
                             "camera feeds, writes BENCH_streaming.json; "
                             "pool: multiprocess ShardWorkerPool vs the "
                             "single-process router vs sequential engines, "
                             "writes BENCH_pool.json; serve: the multi-tenant "
                             "HTTP gateway under concurrent load-generator "
                             "tenants with a direct-session byte-identity "
                             "oracle and an injected-fault leg, writes "
                             "BENCH_serve.json)")
    parser.add_argument("--feeds", type=int, default=None,
                        help="number of simulated camera feeds for "
                             "--bench streaming/pool (default 8)")
    parser.add_argument("--frames", type=int, default=None,
                        help="frames per simulated feed for --bench "
                             "streaming/pool (default 400)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --bench pool (default 4; "
                             "the skew and chaos scenarios default to 2)")
    parser.add_argument("--scenario",
                        choices=["throughput", "skew", "chaos", "drift"],
                        default=None,
                        help="--bench pool scenario: 'throughput' (default) "
                             "compares pool/router/sequential serving; "
                             "'skew' drives one hot stream at 4x its "
                             "siblings' rate and compares round-robin vs "
                             "least-loaded placement plus a live rebalance "
                             "(imbalance ratios land in BENCH_pool.json "
                             "under 'skew'); 'chaos' runs a seeded fault "
                             "plan (kills, hangs, stalls, checkpoint "
                             "failures) plus a poison-input degraded-mode "
                             "run, recording recovery latency and "
                             "degraded throughput in BENCH_pool.json "
                             "under 'chaos'; 'drift' moves the hotspot "
                             "between feeds mid-run and exercises the "
                             "self-managing pool — autonomous rebalance "
                             "triggers, shared-memory dispatch and elastic "
                             "grow/shrink — recording trigger convergence "
                             "in BENCH_pool.json under 'drift'")
    parser.add_argument("--smoke", action="store_true",
                        help="shrink --bench pool/serve to a CI-sized "
                             "workload (serve: byte-identity assertions "
                             "only, no wall-clock claims)")
    parser.add_argument("--tenants", type=int, default=None,
                        help="concurrent load-generator tenants for "
                             "--bench serve (default 4)")
    parser.add_argument("--duration", type=float, default=None,
                        help="workload length knob for --bench serve: "
                             "scales the seeded per-feed frame count "
                             "(default 2.0 ~ 400 frames/feed), keeping "
                             "runs deterministic and oracle-checkable")
    args = parser.parse_args(argv)

    # Flags scoped to a benchmark mode are rejected elsewhere instead of
    # being silently dropped.
    if args.bench != "pool":
        where = f"--bench {args.bench}" if args.bench else "the figures run"
        for flag, value in (("--scenario", args.scenario),
                            ("--workers", args.workers)):
            if value is not None:
                parser.error(f"{flag} only applies to --bench pool, not {where}")
    if args.bench not in ("pool", "serve"):
        where = f"--bench {args.bench}" if args.bench else "the figures run"
        if args.smoke:
            parser.error(
                f"--smoke only applies to --bench pool/serve, not {where}"
            )
    if args.bench not in ("streaming", "pool"):
        where = f"--bench {args.bench}" if args.bench else "the figures run"
        for flag, value in (("--feeds", args.feeds), ("--frames", args.frames)):
            if value is not None:
                parser.error(
                    f"{flag} only applies to --bench streaming/pool, not {where}"
                )
    if args.bench != "serve":
        where = f"--bench {args.bench}" if args.bench else "the figures run"
        for flag, value in (("--tenants", args.tenants),
                            ("--duration", args.duration)):
            if value is not None:
                parser.error(
                    f"{flag} only applies to --bench serve, not {where}"
                )
    if args.scenario is None:
        args.scenario = "throughput"

    if args.bench == "kernel":
        from repro.experiments.kernel_bench import (
            DEFAULT_DATASETS, render_report, run_kernel_benchmark,
        )
        report = run_kernel_benchmark(
            scale=args.scale,
            datasets=args.datasets or list(DEFAULT_DATASETS),
        )
        print(render_report(report))
        # Like the serve bench, the exit code reflects verification: a
        # fast array kernel that diverges from the oracle is a failure.
        return 0 if report["verification"]["ok"] else 1

    if args.bench == "streaming":
        from repro.experiments.streaming_bench import (
            DEFAULT_FEEDS, DEFAULT_FRAMES, render_report,
            run_streaming_benchmark,
        )
        report = run_streaming_benchmark(
            num_feeds=args.feeds if args.feeds is not None else DEFAULT_FEEDS,
            frames_per_feed=args.frames if args.frames is not None else DEFAULT_FRAMES,
        )
        print(render_report(report))
        return 0

    if args.bench == "serve":
        from repro.experiments.serve_bench import (
            render_serve_report, run_serve_benchmark,
        )
        report = run_serve_benchmark(
            num_tenants=args.tenants if args.tenants is not None else 4,
            duration=args.duration if args.duration is not None else 2.0,
            smoke=args.smoke,
        )
        print(render_serve_report(report))
        service_ok = report["service"]["verification"]["ok"]
        fault_ok = report.get("fault", {}).get("ok", True)
        return 0 if service_ok and fault_ok else 1

    if args.bench == "pool" and args.scenario == "skew":
        from repro.experiments.streaming_bench import (
            render_skew_report, run_skew_benchmark,
        )
        kwargs = {"smoke": args.smoke}
        if args.feeds is not None:
            kwargs["num_feeds"] = args.feeds
        if args.frames is not None:
            kwargs["frames_per_feed"] = args.frames
        if args.workers is not None:
            kwargs["workers"] = args.workers
        report = run_skew_benchmark(**kwargs)
        print(render_skew_report(report))
        return 0

    if args.bench == "pool" and args.scenario == "drift":
        from repro.experiments.streaming_bench import (
            render_drift_report, run_drift_benchmark,
        )
        kwargs = {"smoke": args.smoke}
        if args.feeds is not None:
            kwargs["num_feeds"] = args.feeds
        if args.frames is not None:
            kwargs["frames_per_feed"] = args.frames
        if args.workers is not None:
            kwargs["workers"] = args.workers
        report = run_drift_benchmark(**kwargs)
        print(render_drift_report(report))
        return 0

    if args.bench == "pool" and args.scenario == "chaos":
        from repro.experiments.streaming_bench import (
            render_chaos_report, run_chaos_benchmark,
        )
        kwargs = {"smoke": args.smoke}
        if args.feeds is not None:
            kwargs["num_feeds"] = args.feeds
        if args.frames is not None:
            kwargs["frames_per_feed"] = args.frames
        if args.workers is not None:
            kwargs["workers"] = args.workers
        report = run_chaos_benchmark(**kwargs)
        print(render_chaos_report(report))
        return 0

    if args.bench == "pool":
        from repro.experiments.streaming_bench import (
            DEFAULT_FEEDS, DEFAULT_FRAMES, DEFAULT_WORKERS,
            render_pool_report, run_pool_benchmark,
        )
        report = run_pool_benchmark(
            num_feeds=args.feeds if args.feeds is not None else DEFAULT_FEEDS,
            frames_per_feed=args.frames if args.frames is not None else DEFAULT_FRAMES,
            workers=args.workers if args.workers is not None else DEFAULT_WORKERS,
            smoke=args.smoke,
        )
        print(render_pool_report(report))
        return 0

    from repro.datasets.statistics import statistics_table
    from repro.experiments import figures
    from repro.experiments.report import render_experiment

    experiments = {
        name: getattr(figures, attr)
        for name, attr in zip(EXPERIMENT_NAMES, (
            "figure4_total_frames",
            "figure5_duration",
            "figure6_window_size",
            "figure7_occlusion",
            "figure8_query_count",
            "figure9_nmin",
            "figure10_end_to_end",
        ))
    }
    selected = args.only or ["table6", *experiments]
    for name in selected:
        start = time.perf_counter()
        if name == "table6":
            stats = figures.table6_statistics(scale=args.scale) if not args.datasets \
                else figures.table6_statistics(args.datasets, scale=args.scale)
            print("== table6: dataset statistics ==")
            print(statistics_table(stats))
        elif name in experiments:
            kwargs = {"scale": args.scale}
            if args.datasets and name not in ("figure8", "figure9"):
                kwargs["datasets"] = args.datasets
            result = experiments[name](**kwargs)
            print(render_experiment(result))
        else:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - start
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
