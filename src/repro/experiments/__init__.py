"""Experiment harness reproducing the paper's evaluation (Section 6)."""

from repro.experiments.harness import (
    ExperimentResult,
    MethodTiming,
    run_mcos_generation,
    run_query_evaluation,
    time_mcos_generation,
)
from repro.experiments.figures import (
    figure4_total_frames,
    figure5_duration,
    figure6_window_size,
    figure7_occlusion,
    figure8_query_count,
    figure9_nmin,
    figure10_end_to_end,
    table6_statistics,
)
from repro.experiments.report import render_series_table, series_to_markdown

__all__ = [
    "MethodTiming",
    "ExperimentResult",
    "run_mcos_generation",
    "run_query_evaluation",
    "time_mcos_generation",
    "table6_statistics",
    "figure4_total_frames",
    "figure5_duration",
    "figure6_window_size",
    "figure7_occlusion",
    "figure8_query_count",
    "figure9_nmin",
    "figure10_end_to_end",
    "render_series_table",
    "series_to_markdown",
]
