"""Experiment harness reproducing the paper's evaluation (Section 6).

The figure/table experiments simulate the vision pipeline and therefore need
numpy; the streaming and pool benchmarks do not.  The numpy-backed names are
exported lazily (PEP 562) so ``repro.experiments.streaming_bench`` — and the
``python -m repro.experiments --bench streaming/pool`` entry points — keep
working on machines without numpy.
"""

__all__ = [
    "MethodTiming",
    "ExperimentResult",
    "run_mcos_generation",
    "run_query_evaluation",
    "time_mcos_generation",
    "table6_statistics",
    "figure4_total_frames",
    "figure5_duration",
    "figure6_window_size",
    "figure7_occlusion",
    "figure8_query_count",
    "figure9_nmin",
    "figure10_end_to_end",
    "render_series_table",
    "series_to_markdown",
]

#: Lazily exported name -> defining submodule.
_SUBMODULE_OF = {
    "MethodTiming": "harness",
    "ExperimentResult": "harness",
    "run_mcos_generation": "harness",
    "run_query_evaluation": "harness",
    "time_mcos_generation": "harness",
    "table6_statistics": "figures",
    "figure4_total_frames": "figures",
    "figure5_duration": "figures",
    "figure6_window_size": "figures",
    "figure7_occlusion": "figures",
    "figure8_query_count": "figures",
    "figure9_nmin": "figures",
    "figure10_end_to_end": "figures",
    "render_series_table": "report",
    "series_to_markdown": "report",
}


def __getattr__(name):
    try:
        submodule = _SUBMODULE_OF[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(f"{__name__}.{submodule}"), name)
    globals()[name] = value  # cache: __getattr__ only fires on the first miss
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
