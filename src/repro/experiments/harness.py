"""Measurement primitives shared by all experiments.

Every experiment in Section 6 boils down to one of two measurements:

* *MCOS generation time* -- run one state-maintenance strategy (NAIVE, MFS,
  SSG) over a relation with window ``w`` and duration ``d`` and time it
  (Figures 4-7);
* *query evaluation time* -- run the full engine (MCOS generation + CNFEvalE
  evaluation, optionally with Proposition-1 pruning) over a relation with a
  query workload and time it (Figures 8-10).

Besides wall-clock seconds the harness records the deterministic work
counters of the generators (state visits, intersections, peak live states),
which are independent of interpreter speed and are reported alongside the
timings in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.base import GeneratorStats
from repro.datamodel.relation import VideoRelation
from repro.engine.config import EngineConfig, MCOSMethod
from repro.engine.engine import TemporalVideoQueryEngine
from repro.query.model import CNFQuery

#: The three state-maintenance strategies compared throughout Section 6.
MCOS_METHODS: Sequence[MCOSMethod] = (MCOSMethod.NAIVE, MCOSMethod.MFS, MCOSMethod.SSG)


@dataclass
class MethodTiming:
    """One measurement: a method applied to one parameter configuration."""

    method: str
    dataset: str
    parameter: str
    value: object
    seconds: float
    result_states: int = 0
    matches: int = 0
    stats: Optional[GeneratorStats] = None

    @property
    def work(self) -> int:
        """Deterministic work measure: state visits performed."""
        return self.stats.state_visits if self.stats else 0


@dataclass
class ExperimentResult:
    """All measurements of one experiment (one figure of the paper)."""

    name: str
    description: str
    timings: List[MethodTiming] = field(default_factory=list)

    def add(self, timing: MethodTiming) -> None:
        """Record one measurement."""
        self.timings.append(timing)

    def series(self) -> Dict[str, Dict[object, float]]:
        """Timings grouped as ``{method: {parameter value: seconds}}``."""
        grouped: Dict[str, Dict[object, float]] = {}
        for timing in self.timings:
            grouped.setdefault(timing.method, {})[timing.value] = timing.seconds
        return grouped

    def datasets(self) -> List[str]:
        """Datasets that appear in this experiment."""
        seen: Dict[str, None] = {}
        for timing in self.timings:
            seen.setdefault(timing.dataset, None)
        return list(seen)

    def speedup(self, baseline: str, method: str) -> Dict[object, float]:
        """Per-parameter speedup of ``method`` relative to ``baseline``."""
        series = self.series()
        base = series.get(baseline, {})
        other = series.get(method, {})
        return {
            value: base[value] / other[value]
            for value in base
            if value in other and other[value] > 0
        }


def time_mcos_generation(
    relation: VideoRelation,
    method: MCOSMethod,
    window_size: int,
    duration: int,
    labels_of_interest: Optional[Iterable[str]] = None,
    repeats: int = 1,
) -> MethodTiming:
    """Time one MCOS generation strategy over a relation.

    ``repeats > 1`` keeps the best of several runs on fresh generators (the
    machine only adds noise, never speed) — use it for experiments whose
    assertions compare measurements against each other.
    """
    best: Optional[MethodTiming] = None
    for _ in range(max(1, repeats)):
        generator = method.generator_class(
            window_size=window_size,
            duration=duration,
            labels_of_interest=labels_of_interest,
        )
        start = time.perf_counter()
        result_states = 0
        for result in generator.process_relation(relation):
            result_states += len(result)
        seconds = time.perf_counter() - start
        if best is None or seconds < best.seconds:
            best = MethodTiming(
                method=method.value,
                dataset=relation.name,
                parameter="",
                value=None,
                seconds=seconds,
                result_states=result_states,
                stats=generator.stats,
            )
    return best


def run_mcos_generation(
    relation: VideoRelation,
    window_size: int,
    duration: int,
    methods: Sequence[MCOSMethod] = MCOS_METHODS,
) -> List[MethodTiming]:
    """Time every requested strategy over the same relation."""
    return [
        time_mcos_generation(relation, method, window_size, duration)
        for method in methods
    ]


def run_query_evaluation(
    relation: VideoRelation,
    queries: Sequence[CNFQuery],
    method: MCOSMethod,
    window_size: int,
    duration: int,
    enable_pruning: bool = False,
    repeats: int = 1,
) -> MethodTiming:
    """Time the full engine (MCOS generation + query evaluation).

    With ``repeats > 1`` the measurement is repeated on a fresh engine and
    the best run is kept — the interpreter and machine only add noise, never
    speed (same methodology as the kernel benchmark).  Experiments whose
    assertions compare method variants against each other should repeat:
    variants are timed sequentially, so a single-shot measurement hands the
    later ones a progressively noisier process.
    """
    config = EngineConfig(
        method=method,
        window_size=window_size,
        duration=duration,
        enable_pruning=enable_pruning,
    )
    best: Optional[MethodTiming] = None
    for _ in range(max(1, repeats)):
        engine = TemporalVideoQueryEngine(queries, config)
        start = time.perf_counter()
        run = engine.run(relation)
        seconds = time.perf_counter() - start
        if best is None or seconds < best.seconds:
            best = MethodTiming(
                method=config.method_label,
                dataset=relation.name,
                parameter="",
                value=None,
                seconds=seconds,
                result_states=run.result_states,
                matches=len(run.matches),
                stats=run.generator_stats,
            )
    return best
