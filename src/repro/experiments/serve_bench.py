"""Service-tier benchmark: the gateway under concurrent tenant load.

Stands up one :class:`~repro.serve.gateway.Gateway` (pool backend by
default) and drives ``N`` concurrent tenants through seeded workloads
with the load generator, writing a ``BENCH_serve.json`` report with two
legs:

* **service** — the clean run: sustained request throughput, ingest
  frames/sec and end-to-end match latency (p50/p95) under ``N`` tenants,
  with every tenant's delivered matches verified **byte-identical** to a
  direct-session oracle replaying the same seeded workload without HTTP
  or tenancy (per ``(query, stream)`` sequence — the deterministic unit;
  cross-stream interleave depends on pump timing, and the report would be
  worthless if the service tier changed a single answer).
* **fault** — the same fleet with a scripted ``sigkill`` pinned to one
  tenant's stream on the pool backend.  The worker hosting that stream
  dies on every replay attempt and the supervisor parks it; the claim
  verified here is *containment*: the gateway stays up, ``/healthz``
  turns ``degraded``, streams on surviving workers keep answering
  byte-identically (parked streams deliver a strict prefix), and after
  the operator clears the fault and POSTs ``/v1/admin/repair`` the whole
  fleet drains to full byte-identity.

``--smoke`` shrinks the workload and asserts the byte-identity claims
only — no wall-clock numbers worth reading, but the assertions are the
same, which is what CI runs.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.serve.client import GatewayClient
from repro.serve.gateway import Gateway, GatewayRunner
from repro.serve.loadgen import (
    TenantResult,
    TenantWorkload,
    canonical,
    direct_oracle,
    run_tenants,
    seeded_tenants,
    summarize,
)
from repro.streaming.faultinject import Fault, FaultPlan

#: Admin key used by the benchmark's operator actions (repair, healthz).
ADMIN_KEY = "bench-admin"


def _frames_per_feed(duration: float, smoke: bool) -> int:
    """Workload size from ``--duration``: the knob scales the *seeded*
    workload (deterministic, so the oracle replays it exactly) rather
    than capping wall-clock time, which would make runs incomparable."""
    if smoke:
        return 30
    return max(40, int(200 * duration))


def _verify_tenants(
    workloads: List[TenantWorkload],
    results: List[TenantResult],
    backend_errors: bool = True,
) -> Dict:
    """Full-fleet byte-identity of delivered matches vs the oracle."""
    identical = 0
    mismatches: List[str] = []
    total_matches = 0
    for workload, result in zip(workloads, results):
        if result.error is not None and backend_errors:
            mismatches.append(f"{workload.name}: {result.error!r}")
            continue
        expected = direct_oracle(workload)
        total_matches += sum(len(v) for v in expected.values())
        if canonical(expected) == canonical(result.delivered):
            identical += 1
        else:
            mismatches.append(workload.name)
    return {
        "tenants": len(workloads),
        "byte_identical": identical,
        "oracle_matches": total_matches,
        "mismatches": mismatches,
        "ok": identical == len(workloads),
    }


def _drain_all(
    client_of: Dict[str, GatewayClient],
    workloads: List[TenantWorkload],
    results: List[TenantResult],
) -> None:
    """Flush then poll every tenant's queries once more, into results."""
    now = time.monotonic()
    for workload, result in zip(workloads, results):
        client = client_of[workload.name]
        client.flush()
        for local_qid in range(len(workload.queries)):
            payload = client.poll_matches(local_qid)
            result.record_matches(local_qid, payload["matches"], {}, now)


def _service_leg(
    workloads: List[TenantWorkload],
    backend: str,
    num_sessions: int,
    session_kwargs: Dict,
) -> Dict:
    gateway = Gateway(
        [w.config() for w in workloads],
        admin_key=ADMIN_KEY,
        backend=backend,
        num_sessions=num_sessions,
        session_kwargs=dict(session_kwargs),
    )
    with GatewayRunner(gateway) as runner:
        results, elapsed = run_tenants(workloads, runner.host, runner.port)
        admin = GatewayClient(runner.host, runner.port, ADMIN_KEY)
        health = admin.healthz().payload
        stats = admin.stats().payload
        admin.close()
    leg = summarize(results, elapsed)
    leg["healthz"] = health["status"]
    leg["gateway_counters"] = stats["gateway"]
    leg["verification"] = _verify_tenants(workloads, results)
    return leg


def _fault_leg(
    workloads: List[TenantWorkload],
    num_sessions: int,
    session_kwargs: Dict,
) -> Dict:
    """Pool backend with a pinned sigkill: containment, then recovery."""
    victim = workloads[0]
    victim_stream = sorted(victim.feeds)[0]
    scoped = f"{victim.name}/{victim_stream}"
    fault_frame = 20
    kwargs = dict(session_kwargs)
    # Park (don't raise) when the fault proves irrecoverable, and keep the
    # poison heuristic out of the way so the scripted fault is what parks
    # the worker, deterministically.
    kwargs["degraded_mode"] = True
    kwargs.setdefault("supervision", {"poison_threshold": None})
    plan = FaultPlan(
        [Fault("sigkill", None, frame=(scoped, fault_frame), fires=0)]
    )
    gateway = Gateway(
        [w.config() for w in workloads],
        admin_key=ADMIN_KEY,
        backend="pool",
        num_sessions=num_sessions,
        session_kwargs=kwargs,
    )
    leg: Dict = {
        "fault": {"kind": "sigkill", "stream": scoped, "frame": fault_frame},
    }
    runner = GatewayRunner(gateway)
    clients: Dict[str, GatewayClient] = {}
    try:
        with plan.install():
            runner.start()
            results, elapsed = run_tenants(workloads, runner.host, runner.port)
            admin = GatewayClient(runner.host, runner.port, ADMIN_KEY)
            health = admin.healthz().payload
            parked = sorted(
                stream for stream, record in health["streams"].items()
                if record.get("state") != "healthy"
            )
            leg["during_fault"] = {
                "gateway_up": True,
                "healthz": health["status"],
                "parked_streams": parked,
                "summary": summarize(results, elapsed),
            }
            # Containment: every (query, stream) sequence on a healthy
            # stream must already be byte-identical; a parked stream may
            # only be *behind* (a strict prefix), never wrong.
            healthy_ok, prefix_ok, violations = 0, 0, []
            for workload, result in zip(workloads, results):
                expected = direct_oracle(workload)
                keys = set(expected) | set(result.delivered)
                for key in sorted(keys):
                    want = expected.get(key, [])
                    got = result.delivered.get(key, [])
                    scoped_key = f"{workload.name}/{key[1]}"
                    if scoped_key in parked:
                        if got == want[: len(got)]:
                            prefix_ok += 1
                        else:
                            violations.append(f"{workload.name}:{key}")
                    elif canonical({key: want}) == canonical({key: got}):
                        healthy_ok += 1
                    else:
                        violations.append(f"{workload.name}:{key}")
            leg["during_fault"]["healthy_sequences_identical"] = healthy_ok
            leg["during_fault"]["parked_sequences_prefix"] = prefix_ok
            leg["during_fault"]["violations"] = violations
            leg["during_fault"]["ok"] = (
                health["status"] == "degraded" and not violations
            )
        # The context exited: the fault cause is cleared.  The operator
        # repairs; replayed frames drain and the whole fleet must now be
        # byte-identical — exactly-once across the park/repair boundary.
        revived = admin.repair()
        for workload in workloads:
            clients[workload.name] = GatewayClient(
                runner.host, runner.port, workload.api_key
            )
        _drain_all(clients, workloads, results)
        verification = _verify_tenants(workloads, results)
        health_after = admin.healthz().payload
        admin.close()
        leg["after_repair"] = {
            "revived_streams": revived,
            "healthz": health_after["status"],
            "verification": verification,
            "ok": verification["ok"] and health_after["status"] == "ok",
        }
        leg["ok"] = leg["during_fault"]["ok"] and leg["after_repair"]["ok"]
    finally:
        for client in clients.values():
            client.close()
        runner.close()
    return leg


def run_serve_benchmark(
    num_tenants: int = 4,
    duration: float = 2.0,
    backend: str = "pool",
    num_sessions: int = 2,
    num_workers: int = 2,
    seed: int = 0,
    smoke: bool = False,
    with_fault: bool = True,
    output_path: Optional[str] = "BENCH_serve.json",
) -> Dict:
    """The full service-tier benchmark (see the module docstring)."""
    if num_tenants < 1:
        raise ValueError("num_tenants must be >= 1")
    frames = _frames_per_feed(duration, smoke)
    workloads = seeded_tenants(num_tenants, seed=seed, frames_per_feed=frames)
    session_kwargs = {"watermark": 4}
    if backend == "pool":
        session_kwargs["num_workers"] = num_workers
    report: Dict = {
        "benchmark": "serve",
        "params": {
            "tenants": num_tenants,
            "duration": duration,
            "frames_per_feed": frames,
            "feeds_per_tenant": len(workloads[0].feeds),
            "queries_per_tenant": len(workloads[0].queries),
            "backend": backend,
            "num_sessions": num_sessions,
            "num_workers": num_workers if backend == "pool" else None,
            "seed": seed,
            "smoke": smoke,
        },
        "service": _service_leg(
            workloads, backend, num_sessions, session_kwargs
        ),
    }
    if with_fault and backend == "pool":
        report["fault"] = _fault_leg(workloads, 1, session_kwargs)
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        report["__written_to__"] = os.path.abspath(output_path)
    return report


def render_serve_report(report: Dict) -> str:
    """A terminal summary of one serve-benchmark report."""
    params = report["params"]
    service = report["service"]
    verification = service["verification"]
    lines = [
        "service tier benchmark "
        f"({params['tenants']} tenants, {params['backend']} backend, "
        f"{params['num_sessions']} session(s), "
        f"{params['frames_per_feed']} frames/feed"
        f"{', smoke' if params['smoke'] else ''})",
        f"  sustained_qps          {service['sustained_qps']:10.1f}",
        f"  ingest_frames_per_sec  {service['ingest_frames_per_sec']:10.1f}",
        f"  match_latency_p50_ms   {service['match_latency']['p50_ms']:10.2f}",
        f"  match_latency_p95_ms   {service['match_latency']['p95_ms']:10.2f}",
        f"  byte_identical         "
        f"{verification['byte_identical']}/{verification['tenants']} tenants"
        f" ({verification['oracle_matches']} oracle matches)"
        f" {'OK' if verification['ok'] else 'MISMATCH'}",
    ]
    fault = report.get("fault")
    if fault:
        during, after = fault["during_fault"], fault["after_repair"]
        lines += [
            f"  fault leg: sigkill on {fault['fault']['stream']} "
            f"@ frame {fault['fault']['frame']}",
            f"    during: healthz={during['healthz']} "
            f"parked={len(during['parked_streams'])} "
            f"healthy_seq_ok={during['healthy_sequences_identical']} "
            f"{'OK' if during['ok'] else 'FAIL'}",
            f"    repair: healthz={after['healthz']} "
            f"revived={len(after['revived_streams'])} "
            f"identical={after['verification']['byte_identical']}"
            f"/{after['verification']['tenants']} "
            f"{'OK' if after['ok'] else 'FAIL'}",
        ]
    if "__written_to__" in report:
        lines.append(f"  report written to {report['__written_to__']}")
    return "\n".join(lines)
