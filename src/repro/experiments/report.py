"""Rendering helpers for experiment results (text and Markdown tables)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import ExperimentResult, MethodTiming


def _format_value(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def render_series_table(
    result: ExperimentResult, dataset: Optional[str] = None, work: bool = False
) -> str:
    """Render one experiment (optionally restricted to one dataset) as text.

    Rows are methods, columns are parameter values, cells are seconds (or the
    deterministic work counter when ``work`` is True) -- the same layout as the
    figures in the paper.
    """
    timings = [
        t for t in result.timings if dataset is None or t.dataset == dataset
    ]
    if not timings:
        return "(no measurements)"
    values: List[object] = []
    methods: List[str] = []
    for timing in timings:
        if timing.value not in values:
            values.append(timing.value)
        if timing.method not in methods:
            methods.append(timing.method)
    parameter = timings[0].parameter or "value"

    cells: Dict[str, Dict[object, str]] = {m: {} for m in methods}
    for timing in timings:
        metric = float(timing.work) if work else timing.seconds
        cells[timing.method][timing.value] = _format_value(metric)

    header = [parameter] + [str(v) for v in values]
    rows = [[method] + [cells[method].get(v, "-") for v in values] for method in methods]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_experiment(result: ExperimentResult, work: bool = False) -> str:
    """Render an experiment as one table per dataset."""
    blocks = [f"== {result.name}: {result.description} =="]
    for dataset in result.datasets():
        blocks.append(f"-- {dataset} --")
        blocks.append(render_series_table(result, dataset, work=work))
    return "\n".join(blocks)


def series_to_markdown(
    result: ExperimentResult, dataset: Optional[str] = None, unit: str = "s"
) -> str:
    """Render an experiment's series as a Markdown table."""
    timings = [
        t for t in result.timings if dataset is None or t.dataset == dataset
    ]
    if not timings:
        return "(no measurements)"
    values: List[object] = []
    methods: List[str] = []
    for timing in timings:
        if timing.value not in values:
            values.append(timing.value)
        if timing.method not in methods:
            methods.append(timing.method)
    parameter = timings[0].parameter or "value"
    by_method: Dict[str, Dict[object, float]] = {m: {} for m in methods}
    for timing in timings:
        by_method[timing.method][timing.value] = timing.seconds

    lines = ["| method | " + " | ".join(f"{parameter}={v}" for v in values) + " |"]
    lines.append("|" + "---|" * (len(values) + 1))
    for method in methods:
        row = [method] + [
            (_format_value(by_method[method][v]) + unit) if v in by_method[method] else "-"
            for v in values
        ]
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
