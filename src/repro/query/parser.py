"""A small text parser for CNF count queries.

The grammar accepts expressions such as::

    car >= 2
    car >= 2 AND person >= 1
    (car >= 2 OR person <= 3) AND (car >= 3 OR person >= 2) AND car <= 5

i.e. a conjunction (``AND``) of disjunctions (``OR``), optionally
parenthesised, whose atoms are ``label op integer`` with ``op`` one of
``<=``, ``=``, ``==``, ``>=``.  Keywords are case-insensitive; labels are any
identifier-like token.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.query.model import CNFQuery, Comparison, Condition, Disjunction

_CONDITION_RE = re.compile(
    r"^\s*(?P<label>[A-Za-z_][\w\-]*)\s*(?P<op><=|>=|==|=)\s*(?P<value>\d+)\s*$"
)


class QueryParseError(ValueError):
    """Raised when a query string cannot be parsed."""


def _split_top_level(text: str, keyword: str) -> List[str]:
    """Split ``text`` on a keyword, ignoring occurrences inside parentheses."""
    parts: List[str] = []
    depth = 0
    token = keyword.upper()
    current: List[str] = []
    i = 0
    upper = text.upper()
    while i < len(text):
        char = text[i]
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError(f"unbalanced parentheses in query: {text!r}")
        if (
            depth == 0
            and upper.startswith(token, i)
            and _is_word_boundary(upper, i, len(token))
        ):
            parts.append("".join(current))
            current = []
            i += len(token)
            continue
        current.append(char)
        i += 1
    if depth != 0:
        raise QueryParseError(f"unbalanced parentheses in query: {text!r}")
    parts.append("".join(current))
    stripped = [p.strip() for p in parts]
    if any(not p for p in stripped):
        raise QueryParseError(
            f"dangling {keyword!r} or empty operand in query: {text!r}"
        )
    return stripped


def _is_word_boundary(text: str, index: int, length: int) -> bool:
    """True when text[index:index+length] is delimited by non-word characters."""
    before_ok = index == 0 or not text[index - 1].isalnum()
    end = index + length
    after_ok = end >= len(text) or not text[end].isalnum()
    return before_ok and after_ok


def _strip_parens(text: str) -> str:
    """Remove one level of enclosing parentheses, if it spans the whole text."""
    text = text.strip()
    while text.startswith("(") and text.endswith(")"):
        depth = 0
        spans_whole = True
        for i, char in enumerate(text):
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0 and i != len(text) - 1:
                    spans_whole = False
                    break
        if not spans_whole:
            break
        text = text[1:-1].strip()
    return text


def parse_condition(text: str) -> Condition:
    """Parse a single ``label op value`` condition."""
    match = _CONDITION_RE.match(text)
    if not match:
        raise QueryParseError(f"cannot parse condition: {text!r}")
    op = match.group("op")
    if op == "==":
        op = "="
    return Condition(match.group("label"), Comparison(op), int(match.group("value")))


def parse_query(
    text: str, window: int = 300, duration: int = 240, name: str = ""
) -> CNFQuery:
    """Parse a CNF query string into a :class:`~repro.query.model.CNFQuery`.

    Parameters
    ----------
    text:
        The query expression, e.g. ``"(car >= 2 OR person <= 3) AND car <= 5"``.
    window, duration:
        Temporal parameters ``w`` and ``d`` attached to the query.
    name:
        Optional name recorded on the query.
    """
    if not text or not text.strip():
        raise QueryParseError("empty query string")
    disjunctions: List[Disjunction] = []
    for conjunct in _split_top_level(text, "AND"):
        body = _strip_parens(conjunct)
        atoms: Tuple[Condition, ...] = tuple(
            parse_condition(_strip_parens(atom))
            for atom in _split_top_level(body, "OR")
        )
        if not atoms:
            raise QueryParseError(f"empty disjunction in query: {text!r}")
        disjunctions.append(Disjunction(atoms))
    return CNFQuery(tuple(disjunctions), window=window, duration=duration, name=name)
