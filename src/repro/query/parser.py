"""A small text parser for CNF count queries.

The grammar accepts expressions such as::

    car >= 2
    car >= 2 AND person >= 1
    (car >= 2 OR person <= 3) AND (car >= 3 OR person >= 2) AND car <= 5

i.e. a conjunction (``AND``) of disjunctions (``OR``), optionally
parenthesised, whose atoms are ``label op integer`` with ``op`` one of
``<=``, ``=``, ``==``, ``>=``.  Keywords are case-insensitive; labels are any
identifier-like token.

Parsing is a thin wrapper over the fluent builder
(:mod:`repro.query.builder`): the text is folded into a
:class:`~repro.query.builder.QueryExpr` with the same ``&`` / ``|``
combinators a programmatic caller would use, so parser- and
builder-produced queries normalise to the *same canonical*
:class:`~repro.query.model.CNFQuery` — they compare equal, hash equal and
checkpoint byte-identically.
"""

from __future__ import annotations

import functools
import re
from typing import List

from repro.query.builder import QueryExpr
from repro.query.model import DEFAULT_DURATION, DEFAULT_WINDOW, CNFQuery, Comparison, Condition

_CONDITION_RE = re.compile(
    r"^\s*(?P<label>[A-Za-z_][\w\-]*)\s*(?P<op><=|>=|==|=)\s*(?P<value>\d+)\s*$",
    re.ASCII,
)

#: The ASCII label-token alphabet (continuation positions) — must agree
#: with ``_CONDITION_RE`` and the model's label validation.
_WORD_CHARS = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_-"
)


class QueryParseError(ValueError):
    """Raised when a query string cannot be parsed."""


def _split_top_level(text: str, keyword: str) -> List[str]:
    """Split ``text`` on a keyword, ignoring occurrences inside parentheses."""
    parts: List[str] = []
    depth = 0
    token = keyword.upper()
    current: List[str] = []
    i = 0
    upper = text.upper()
    while i < len(text):
        char = text[i]
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError(f"unbalanced parentheses in query: {text!r}")
        if (
            depth == 0
            and upper.startswith(token, i)
            and _is_word_boundary(upper, i, len(token))
        ):
            parts.append("".join(current))
            current = []
            i += len(token)
            continue
        current.append(char)
        i += 1
    if depth != 0:
        raise QueryParseError(f"unbalanced parentheses in query: {text!r}")
    parts.append("".join(current))
    stripped = [p.strip() for p in parts]
    if any(not p for p in stripped):
        raise QueryParseError(
            f"dangling {keyword!r} or empty operand in query: {text!r}"
        )
    return stripped


def _is_word_char(char: str) -> bool:
    """Characters that can appear inside a label token (``[\\w\\-]``).

    Underscore and hyphen count: a keyword glued to either (``x_OR``,
    ``A-OR``) is part of a label, not a connective — otherwise printed
    queries with such labels could never re-parse.
    """
    return char in _WORD_CHARS


def _is_word_boundary(text: str, index: int, length: int) -> bool:
    """True when text[index:index+length] is delimited by non-word characters."""
    before_ok = index == 0 or not _is_word_char(text[index - 1])
    end = index + length
    after_ok = end >= len(text) or not _is_word_char(text[end])
    return before_ok and after_ok


def _strip_parens(text: str) -> str:
    """Remove one level of enclosing parentheses, if it spans the whole text."""
    text = text.strip()
    while text.startswith("(") and text.endswith(")"):
        depth = 0
        spans_whole = True
        for i, char in enumerate(text):
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0 and i != len(text) - 1:
                    spans_whole = False
                    break
        if not spans_whole:
            break
        text = text[1:-1].strip()
    return text


def parse_condition(text: str) -> Condition:
    """Parse a single ``label op value`` condition."""
    match = _CONDITION_RE.match(text)
    if not match:
        raise QueryParseError(f"cannot parse condition: {text!r}")
    op = match.group("op")
    if op == "==":
        op = "="
    try:
        return Condition(
            match.group("label"), Comparison(op), int(match.group("value"))
        )
    except ValueError as exc:  # reserved labels (``AND >= 1``) and the like
        raise QueryParseError(str(exc)) from exc


def parse_expression(text: str) -> QueryExpr:
    """Parse a CNF query string into a builder :class:`QueryExpr`.

    This is the structural half of :func:`parse_query`: the text is reduced
    with the builder's own ``&`` / ``|`` combinators and carries no temporal
    parameters yet.
    """
    if not text or not text.strip():
        raise QueryParseError("empty query string")
    conjuncts: List[QueryExpr] = []
    for conjunct in _split_top_level(text, "AND"):
        body = _strip_parens(conjunct)
        atoms = [
            QueryExpr.atom(parse_condition(_strip_parens(atom)))
            for atom in _split_top_level(body, "OR")
        ]
        conjuncts.append(functools.reduce(lambda a, b: a | b, atoms))
    return functools.reduce(lambda a, b: a & b, conjuncts)


def parse_query(
    text: str,
    window: int = DEFAULT_WINDOW,
    duration: int = DEFAULT_DURATION,
    name: str = "",
) -> CNFQuery:
    """Parse a CNF query string into a canonical :class:`CNFQuery`.

    Parameters
    ----------
    text:
        The query expression, e.g. ``"(car >= 2 OR person <= 3) AND car <= 5"``.
    window, duration:
        Temporal parameters ``w`` and ``d`` attached to the query.
    name:
        Optional name recorded on the query.

    The result is in canonical form (sorted, deduplicated clauses — see
    :meth:`CNFQuery.canonical`), identical to what the fluent builder
    produces for the same expression, so ``parse_query(str(q)) == q`` holds
    for every query whose temporal parameters match the defaults, and
    ``parse_query(str(q), window=q.window, duration=q.duration) == q``
    holds universally.
    """
    return parse_expression(text).to_query(
        window=window, duration=duration, name=name
    )
