"""Result-driven state pruning (Section 5.3, Proposition 1).

When every registered query uses only ``>=`` conditions, a state whose MCOS
fails all queries can be *terminated*: every state derived from it has a
subset of its objects, hence smaller per-class counts, hence also fails all
queries.  Terminated states are never materialised by the MCOS generation
layer, which is the optimisation behind the ``MFS_O`` and ``SSG_O`` variants
of the evaluation (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping

from repro.query.evaluator import QueryEvaluator
from repro.query.model import CNFQuery


def queries_support_pruning(queries: Iterable[CNFQuery]) -> bool:
    """True when Proposition 1 applies, i.e. every condition uses ``>=``."""
    queries = list(queries)
    return bool(queries) and all(query.uses_only_ge() for query in queries)


def require_pruning_compatible(query: CNFQuery) -> None:
    """Raise unless the query may join a pruning-enabled workload.

    Single source of the check (and its error message) for every
    registration surface — engine, router, session backends — so the rule
    can never drift between them.
    """
    if not query.uses_only_ge():
        raise ValueError(
            "pruning (the *_O variants) requires all query conditions to use '>='"
        )


@dataclass
class PruningStats:
    """Counters of the pruning strategy."""

    states_checked: int = 0
    states_terminated: int = 0


class StatePruner:
    """State filter implementing Proposition 1.

    Instances are passed as the ``state_filter`` of an MCOS generator; they
    are called with the object set and per-class counts of every freshly
    created state and return ``False`` (terminate) when no registered query
    can be satisfied by the state or any state derived from it.
    """

    def __init__(self, evaluator: QueryEvaluator, enabled: bool = True):
        if enabled and not queries_support_pruning(evaluator.queries):
            raise ValueError(
                "Proposition-1 pruning requires every query condition to use '>='"
            )
        self._evaluator = evaluator
        self._enabled = enabled
        self.stats = PruningStats()

    @property
    def enabled(self) -> bool:
        """Whether pruning is active."""
        return self._enabled

    def __call__(self, object_ids: FrozenSet[int], counts: Mapping[str, int]) -> bool:
        """Return True to keep the state, False to terminate it."""
        if not self._enabled:
            return True
        self.stats.states_checked += 1
        if self._evaluator.evaluate_counts(counts):
            return True
        self.stats.states_terminated += 1
        return False
