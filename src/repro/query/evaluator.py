"""Query evaluation over the result state sets of the MCOS generation layer.

Implements the procedure of Section 5.2: for every satisfied, valid state in
the Result State Set, the MCOS is aggregated into per-class counts, the counts
are probed against the CNFEvalE inverted index, and the frame sets of states
satisfying a query become that query's answer for the current window.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.result import ResultState, ResultStateSet
from repro.query.inequality import CNFEvalEIndex
from repro.query.model import CNFQuery


@dataclass(frozen=True)
class QueryMatch:
    """One query answer: a query satisfied by an MCOS over a frame set.

    ``stream_id`` attributes the match to the feed it was produced on.  The
    bare engine evaluates one relation and knows no stream — it leaves the
    field empty; every streaming surface (shards, the router, the worker
    pool, all session backends) stamps it.  The field is excluded from
    equality and hashing so that engine-level results remain comparable to
    stream-level ones: the *identity* of a match is what matched, not where
    the frames came from.
    """

    query_id: int
    frame_id: int
    object_ids: FrozenSet[int]
    frame_ids: Tuple[int, ...]
    class_counts: Tuple[Tuple[str, int], ...]
    stream_id: str = field(default="", compare=False)

    def counts(self) -> Dict[str, int]:
        """Per-class counts of the matching MCOS as a dictionary."""
        return dict(self.class_counts)

    def for_stream(self, stream_id: str) -> "QueryMatch":
        """A copy of this match attributed to ``stream_id``."""
        if self.stream_id == stream_id:
            return self
        return replace(self, stream_id=stream_id)

    def to_record(self) -> list:
        """Serialise the match as a deterministic JSON-friendly list.

        Used by the streaming checkpoint format to carry produced-but-not-
        yet-consumed matches across a shard hand-off.  Round-trips through
        :meth:`from_record`.
        """
        return [
            self.query_id,
            self.frame_id,
            sorted(self.object_ids),
            list(self.frame_ids),
            [[label, count] for label, count in self.class_counts],
            self.stream_id,
        ]

    @classmethod
    def from_record(cls, record: list) -> "QueryMatch":
        """Rebuild a match from a :meth:`to_record` payload.

        Records written before matches carried stream attribution are five
        elements long; they load with an empty ``stream_id``.
        """
        try:
            if len(record) == 5:  # pre-stream-attribution record
                query_id, frame_id, object_ids, frame_ids, class_counts = record
                stream_id = ""
            else:
                (query_id, frame_id, object_ids, frame_ids, class_counts,
                 stream_id) = record
            return cls(
                query_id=int(query_id),
                frame_id=int(frame_id),
                object_ids=frozenset(int(oid) for oid in object_ids),
                frame_ids=tuple(int(fid) for fid in frame_ids),
                class_counts=tuple(
                    (str(label), int(count)) for label, count in class_counts
                ),
                stream_id=str(stream_id),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"malformed match record: {record!r}") from exc


@dataclass
class EvaluationStats:
    """Work counters of the query evaluation module."""

    states_evaluated: int = 0
    index_probes: int = 0
    matches_produced: int = 0


class QueryEvaluator:
    """Evaluates a set of CNF count queries against result state sets."""

    def __init__(self, queries: Iterable[CNFQuery] = ()):
        self._index = CNFEvalEIndex()
        self.stats = EvaluationStats()
        self._queries: List[CNFQuery] = []
        for query in queries:
            self.add_query(query)

    # ------------------------------------------------------------------
    # Query registry
    # ------------------------------------------------------------------
    def add_query(self, query: CNFQuery) -> CNFQuery:
        """Register a query; returns the copy carrying its assigned id."""
        registered = self._index.add_query(query)
        self._queries.append(registered)
        return registered

    def remove_query(self, query_id: int) -> CNFQuery:
        """Unregister a query by id (live cancellation path).

        The inverted index is rebuilt from the remaining queries and the
        cancelled id is tombstoned inside the index's id counter, so a later
        registration can never reuse it (matches drained after the
        cancellation stay unambiguous).
        """
        removed = self._index.remove_query(query_id)
        self._queries = [q for q in self._queries if q.query_id != query_id]
        return removed

    @property
    def queries(self) -> List[CNFQuery]:
        """All registered queries."""
        return list(self._queries)

    @property
    def index(self) -> CNFEvalEIndex:
        """The underlying CNFEvalE inverted index."""
        return self._index

    def labels_of_interest(self) -> Set[str]:
        """Union of the class labels referenced by the registered queries.

        The MCOS generation layer uses this to drop objects of classes no
        query asks about (Section 3).
        """
        labels: Set[str] = set()
        for query in self._queries:
            labels |= query.labels()
        return labels

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_counts(self, counts: Mapping[str, int]) -> Set[int]:
        """Return the ids of queries satisfied by per-class counts."""
        self.stats.index_probes += 1
        return self._index.matching_queries(counts)

    def evaluate_state(
        self, state: ResultState, labels: Mapping[int, str], frame_id: int
    ) -> List[QueryMatch]:
        """Evaluate all queries against a single result state."""
        self.stats.states_evaluated += 1
        counts = state.class_counts(labels)
        matched = self.evaluate_counts(counts)
        matches = []
        for query_id in sorted(matched):
            matches.append(
                QueryMatch(
                    query_id=query_id,
                    frame_id=frame_id,
                    object_ids=state.object_ids,
                    frame_ids=state.frame_ids,
                    class_counts=tuple(sorted(counts.items())),
                )
            )
        self.stats.matches_produced += len(matches)
        return matches

    def evaluate_result_set(
        self, results: ResultStateSet, labels: Mapping[int, str]
    ) -> List[QueryMatch]:
        """Evaluate all queries against every state of a result state set."""
        matches: List[QueryMatch] = []
        for state in results:
            matches.extend(self.evaluate_state(state, labels, results.current_frame_id))
        return matches

    def brute_force_matching(self, counts: Mapping[str, int]) -> Set[int]:
        """Index-free evaluation used as an oracle in tests."""
        return {
            query.query_id
            for query in self._queries
            if query.query_id is not None and query.evaluate(counts)
        }
