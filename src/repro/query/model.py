"""Query model: CNF expressions over per-class object counts.

A query (Section 2) is a CNF expression whose atomic conditions have the form
``class_label theta n`` with ``theta`` one of ``<=``, ``=``, ``>=``.  The
query is evaluated against the aggregate class counts of a Maximum
Co-occurrence Object Set; it also carries the temporal parameters ``window``
(``w``) and ``duration`` (``d``).

The module additionally defines membership conditions (``attribute in
{values}`` / ``not in``) because the underlying CNFEval algorithm of Whang et
al. is defined over set-membership predicates; the count conditions of the
paper are layered on top of it in :mod:`repro.query.inequality`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple


class Comparison(enum.Enum):
    """Comparison operator of a count condition."""

    LE = "<="
    EQ = "="
    GE = ">="

    def evaluate(self, value: int, threshold: int) -> bool:
        """Apply the comparison to ``value theta threshold``."""
        if self is Comparison.LE:
            return value <= threshold
        if self is Comparison.GE:
            return value >= threshold
        return value == threshold

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Condition:
    """An atomic count condition ``label theta threshold``.

    Examples: ``car >= 2``, ``person <= 3``, ``bus = 1``.
    """

    label: str
    comparison: Comparison
    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("condition thresholds must be non-negative")

    def evaluate(self, counts: Mapping[str, int]) -> bool:
        """Evaluate the condition against per-class counts (missing = 0)."""
        return self.comparison.evaluate(counts.get(self.label, 0), self.threshold)

    def __str__(self) -> str:
        return f"{self.label} {self.comparison.value} {self.threshold}"


@dataclass(frozen=True)
class MembershipCondition:
    """A set-membership condition ``attribute in {values}`` (or ``not in``).

    These are the native predicates of the CNFEval algorithm [Whang et al.];
    the paper's example query ``age in {2, 3} AND (state in {CA} OR gender in
    {F})`` is expressed with them.
    """

    attribute: str
    values: FrozenSet[str]
    negated: bool = False

    def evaluate(self, assignment: Mapping[str, str]) -> bool:
        """Evaluate against an attribute assignment (missing attribute = no value)."""
        value = assignment.get(self.attribute)
        member = value is not None and value in self.values
        return not member if self.negated else member

    def __str__(self) -> str:
        op = "not in" if self.negated else "in"
        values = ", ".join(sorted(self.values))
        return f"{self.attribute} {op} {{{values}}}"


@dataclass(frozen=True)
class Disjunction:
    """A disjunction (OR) of atomic conditions."""

    conditions: Tuple[Condition, ...]

    def __post_init__(self) -> None:
        if not self.conditions:
            raise ValueError("a disjunction must contain at least one condition")

    def evaluate(self, counts: Mapping[str, int]) -> bool:
        """True when at least one condition holds."""
        return any(condition.evaluate(counts) for condition in self.conditions)

    def labels(self) -> FrozenSet[str]:
        """Class labels referenced by the disjunction."""
        return frozenset(condition.label for condition in self.conditions)

    def __str__(self) -> str:
        return " OR ".join(str(c) for c in self.conditions)


@dataclass(frozen=True)
class CNFQuery:
    """A CNF query: a conjunction of disjunctions of count conditions.

    Attributes
    ----------
    disjunctions:
        The conjuncts of the CNF expression.
    window:
        Sliding window size ``w`` in frames.
    duration:
        Duration threshold ``d`` in frames (``0 <= d <= w``).
    query_id:
        Optional identifier; assigned by the evaluator when registered.
    name:
        Optional human-readable name.
    """

    disjunctions: Tuple[Disjunction, ...]
    window: int = 300
    duration: int = 240
    query_id: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.disjunctions:
            raise ValueError("a CNF query must contain at least one disjunction")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if not 0 <= self.duration <= self.window:
            raise ValueError("duration must satisfy 0 <= d <= window")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_condition_lists(
        cls,
        groups: Sequence[Sequence[Tuple[str, str, int]]],
        window: int = 300,
        duration: int = 240,
        name: str = "",
    ) -> "CNFQuery":
        """Build a query from nested ``(label, operator, threshold)`` tuples.

        ``groups`` is a list of disjunctions, each a list of conditions, e.g.::

            CNFQuery.from_condition_lists(
                [[("car", ">=", 2), ("person", "<=", 3)], [("car", "<=", 5)]]
            )
        """
        disjunctions = []
        for group in groups:
            conditions = tuple(
                Condition(label, Comparison(op), threshold)
                for label, op, threshold in group
            )
            disjunctions.append(Disjunction(conditions))
        return cls(tuple(disjunctions), window=window, duration=duration, name=name)

    def to_dict(self) -> Dict:
        """Serialise the query as a JSON-friendly dict (see :meth:`from_dict`).

        Used by the streaming checkpoint format so that a shard snapshot is
        self-contained: a fresh process can rebuild the engine without access
        to the original query objects.
        """
        return {
            "groups": [
                [[c.label, c.comparison.value, c.threshold] for c in d.conditions]
                for d in self.disjunctions
            ],
            "window": self.window,
            "duration": self.duration,
            "query_id": self.query_id,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CNFQuery":
        """Rebuild a query from a :meth:`to_dict` payload."""
        query = cls.from_condition_lists(
            payload["groups"],
            window=int(payload["window"]),
            duration=int(payload["duration"]),
            name=payload.get("name", ""),
        )
        query_id = payload.get("query_id")
        return query.with_id(int(query_id)) if query_id is not None else query

    def with_id(self, query_id: int) -> "CNFQuery":
        """Return a copy of the query carrying the given identifier."""
        return CNFQuery(
            self.disjunctions,
            window=self.window,
            duration=self.duration,
            query_id=query_id,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Evaluation and inspection
    # ------------------------------------------------------------------
    def evaluate(self, counts: Mapping[str, int]) -> bool:
        """Direct (index-free) evaluation against per-class counts.

        Used as the brute-force oracle in tests and by small workloads.
        """
        return all(disjunction.evaluate(counts) for disjunction in self.disjunctions)

    def labels(self) -> FrozenSet[str]:
        """All class labels referenced by the query."""
        return frozenset(
            itertools.chain.from_iterable(d.labels() for d in self.disjunctions)
        )

    def conditions(self) -> List[Condition]:
        """All atomic conditions of the query, in disjunction order."""
        return [c for d in self.disjunctions for c in d.conditions]

    def uses_only_ge(self) -> bool:
        """True when every condition uses ``>=`` (enables Proposition-1 pruning)."""
        return all(c.comparison is Comparison.GE for c in self.conditions())

    def min_threshold(self) -> int:
        """The smallest threshold used by any condition (``n_min`` in Figure 9)."""
        return min(c.threshold for c in self.conditions())

    def __str__(self) -> str:
        return " AND ".join(f"({d})" for d in self.disjunctions)


def class_counts(labels: Iterable[str]) -> Dict[str, int]:
    """Aggregate an iterable of class labels into per-class counts."""
    counts: Dict[str, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return counts


@dataclass(frozen=True)
class MembershipQuery:
    """A CNF query over set-membership predicates (CNFEval's native form)."""

    disjunctions: Tuple[Tuple[MembershipCondition, ...], ...]
    query_id: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.disjunctions or any(not d for d in self.disjunctions):
            raise ValueError("membership queries need at least one condition per disjunction")

    def evaluate(self, assignment: Mapping[str, str]) -> bool:
        """Direct evaluation against an attribute assignment."""
        return all(
            any(cond.evaluate(assignment) for cond in disjunction)
            for disjunction in self.disjunctions
        )

    def with_id(self, query_id: int) -> "MembershipQuery":
        """Return a copy carrying the given identifier."""
        return MembershipQuery(self.disjunctions, query_id=query_id)
