"""Query model: CNF expressions over per-class object counts.

A query (Section 2) is a CNF expression whose atomic conditions have the form
``class_label theta n`` with ``theta`` one of ``<=``, ``=``, ``>=``.  The
query is evaluated against the aggregate class counts of a Maximum
Co-occurrence Object Set; it also carries the temporal parameters ``window``
(``w``) and ``duration`` (``d``).

The module additionally defines membership conditions (``attribute in
{values}`` / ``not in``) because the underlying CNFEval algorithm of Whang et
al. is defined over set-membership predicates; the count conditions of the
paper are layered on top of it in :mod:`repro.query.inequality`.
"""

from __future__ import annotations

import enum
import itertools
import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)


class Comparison(enum.Enum):
    """Comparison operator of a count condition."""

    LE = "<="
    EQ = "="
    GE = ">="

    def evaluate(self, value: int, threshold: int) -> bool:
        """Apply the comparison to ``value theta threshold``."""
        if self is Comparison.LE:
            return value <= threshold
        if self is Comparison.GE:
            return value >= threshold
        return value == threshold

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Rank used by the canonical condition ordering (stable and independent of
#: the operators' surface spelling).
_COMPARISON_RANK = {Comparison.LE: 0, Comparison.EQ: 1, Comparison.GE: 2}

#: Labels must be parseable back out of ``str(query)`` — the printer/parser
#: round-trip contract — so they are restricted to the parser's token shape
#: (ASCII-only, exactly as documented: ``[A-Za-z_][A-Za-z0-9_-]*``).
_LABEL_RE = re.compile(r"^[A-Za-z_][\w\-]*\Z", re.ASCII)

#: Keywords of the query grammar; a label spelled like one could never be
#: re-parsed from the printed form.
_RESERVED_LABELS = frozenset({"and", "or"})

#: Package-wide default temporal parameters (frames).  Single source of
#: truth for ``CNFQuery``, the text parser, the fluent builder and the
#: session facade.
DEFAULT_WINDOW = 300
DEFAULT_DURATION = 240

#: Shape of :meth:`CNFQuery.structural_key`: the canonical disjunctions'
#: sort keys plus the temporal parameters.
_StructuralKey = Tuple[
    Tuple[Tuple[Tuple[str, int, int], ...], ...], int, int
]


@dataclass(frozen=True)
class Condition:
    """An atomic count condition ``label theta threshold``.

    Examples: ``car >= 2``, ``person <= 3``, ``bus = 1``.
    """

    label: str
    comparison: Comparison
    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("condition thresholds must be non-negative")
        if not _LABEL_RE.match(self.label):
            raise ValueError(
                f"invalid class label {self.label!r}: labels must match "
                "[A-Za-z_][A-Za-z0-9_-]* so conditions can be printed and "
                "re-parsed"
            )
        if self.label.lower() in _RESERVED_LABELS:
            raise ValueError(
                f"class label {self.label!r} collides with a query keyword"
            )

    @classmethod
    def trusted(cls, label: str, comparison: Comparison, threshold: int) -> "Condition":
        """Construct a condition without the label-grammar check.

        Checkpoint-restore compatibility: snapshots written before label
        validation existed may carry labels the grammar now rejects (spaces,
        non-ASCII).  Restoring them must keep working — evaluation only ever
        compares label strings — even though such a query can no longer be
        pretty-printed and re-parsed.  Thresholds are still validated.
        """
        if threshold < 0:
            raise ValueError("condition thresholds must be non-negative")
        condition = object.__new__(cls)
        object.__setattr__(condition, "label", label)
        object.__setattr__(condition, "comparison", comparison)
        object.__setattr__(condition, "threshold", threshold)
        return condition

    def evaluate(self, counts: Mapping[str, int]) -> bool:
        """Evaluate the condition against per-class counts (missing = 0)."""
        return self.comparison.evaluate(counts.get(self.label, 0), self.threshold)

    def sort_key(self) -> Tuple[str, int, int]:
        """Total order used by the canonical CNF form."""
        return (self.label, _COMPARISON_RANK[self.comparison], self.threshold)

    def __str__(self) -> str:
        return f"{self.label} {self.comparison.value} {self.threshold}"


@dataclass(frozen=True)
class MembershipCondition:
    """A set-membership condition ``attribute in {values}`` (or ``not in``).

    These are the native predicates of the CNFEval algorithm [Whang et al.];
    the paper's example query ``age in {2, 3} AND (state in {CA} OR gender in
    {F})`` is expressed with them.
    """

    attribute: str
    values: FrozenSet[str]
    negated: bool = False

    def evaluate(self, assignment: Mapping[str, str]) -> bool:
        """Evaluate against an attribute assignment (missing attribute = no value)."""
        value = assignment.get(self.attribute)
        member = value is not None and value in self.values
        return not member if self.negated else member

    def __str__(self) -> str:
        op = "not in" if self.negated else "in"
        values = ", ".join(sorted(self.values))
        return f"{self.attribute} {op} {{{values}}}"


@dataclass(frozen=True)
class Disjunction:
    """A disjunction (OR) of atomic conditions."""

    conditions: Tuple[Condition, ...]

    def __post_init__(self) -> None:
        if not self.conditions:
            raise ValueError("a disjunction must contain at least one condition")

    def evaluate(self, counts: Mapping[str, int]) -> bool:
        """True when at least one condition holds."""
        return any(condition.evaluate(counts) for condition in self.conditions)

    def labels(self) -> FrozenSet[str]:
        """Class labels referenced by the disjunction."""
        return frozenset(condition.label for condition in self.conditions)

    def canonical(self) -> "Disjunction":
        """The disjunction with duplicate conditions dropped, in sorted order."""
        ordered = tuple(sorted(set(self.conditions), key=Condition.sort_key))
        return self if ordered == self.conditions else Disjunction(ordered)

    def sort_key(self) -> Tuple[Tuple[str, int, int], ...]:
        """Total order of canonical disjunctions (assumes sorted conditions)."""
        return tuple(condition.sort_key() for condition in self.conditions)

    def __str__(self) -> str:
        return " OR ".join(str(c) for c in self.conditions)


@dataclass(frozen=True, eq=False)
class CNFQuery:
    """A CNF query: a conjunction of disjunctions of count conditions.

    Attributes
    ----------
    disjunctions:
        The conjuncts of the CNF expression.
    window:
        Sliding window size ``w`` in frames.
    duration:
        Duration threshold ``d`` in frames (``0 <= d <= w``).
    query_id:
        Optional identifier; assigned by the evaluator when registered.
    name:
        Optional human-readable name.

    Two queries are equal (and hash equally) when their *canonical forms*
    agree: same window, same duration, and the same set of deduplicated,
    sorted disjunction clauses.  ``query_id`` and ``name`` are bookkeeping,
    not semantics, and do not participate — so a builder-produced query, its
    parsed pretty-printed form and its registered copy all compare equal,
    which is how duplicate registrations are detected.
    """

    disjunctions: Tuple[Disjunction, ...]
    window: int = DEFAULT_WINDOW
    duration: int = DEFAULT_DURATION
    query_id: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.disjunctions:
            raise ValueError("a CNF query must contain at least one disjunction")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if not 0 <= self.duration <= self.window:
            raise ValueError("duration must satisfy 0 <= d <= window")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_condition_lists(
        cls,
        groups: Sequence[Sequence[Tuple[str, str, int]]],
        window: int = DEFAULT_WINDOW,
        duration: int = DEFAULT_DURATION,
        name: str = "",
    ) -> "CNFQuery":
        """Build a query from nested ``(label, operator, threshold)`` tuples.

        ``groups`` is a list of disjunctions, each a list of conditions, e.g.::

            CNFQuery.from_condition_lists(
                [[("car", ">=", 2), ("person", "<=", 3)], [("car", "<=", 5)]]
            )
        """
        disjunctions: List[Disjunction] = []
        for group in groups:
            conditions = tuple(
                Condition(label, Comparison(op), threshold)
                for label, op, threshold in group
            )
            disjunctions.append(Disjunction(conditions))
        return cls(tuple(disjunctions), window=window, duration=duration, name=name)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the query as a JSON-friendly dict (see :meth:`from_dict`).

        Used by the streaming checkpoint format so that a shard snapshot is
        self-contained: a fresh process can rebuild the engine without access
        to the original query objects.
        """
        return {
            "groups": [
                [[c.label, c.comparison.value, c.threshold] for c in d.conditions]
                for d in self.disjunctions
            ],
            "window": self.window,
            "duration": self.duration,
            "query_id": self.query_id,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CNFQuery":
        """Rebuild a query from a :meth:`to_dict` payload.

        Labels are restored through :meth:`Condition.trusted`: snapshots
        written before the label grammar existed stay restorable even when
        their labels would be rejected by today's constructors.
        """
        disjunctions = tuple(
            Disjunction(
                tuple(
                    Condition.trusted(str(label), Comparison(op), int(threshold))
                    for label, op, threshold in group
                )
            )
            for group in payload["groups"]
        )
        query = cls(
            disjunctions,
            window=int(payload["window"]),
            duration=int(payload["duration"]),
            name=payload.get("name", ""),
        )
        query_id = payload.get("query_id")
        return query.with_id(int(query_id)) if query_id is not None else query

    def with_id(self, query_id: int) -> "CNFQuery":
        """Return a copy of the query carrying the given identifier."""
        return CNFQuery(
            self.disjunctions,
            window=self.window,
            duration=self.duration,
            query_id=query_id,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Canonical form and structural identity
    # ------------------------------------------------------------------
    def canonical(self) -> "CNFQuery":
        """The query in canonical form: sorted, deduplicated clauses.

        Conditions are deduplicated and sorted inside each disjunction, and
        the disjunctions themselves are deduplicated and sorted, so any two
        ways of writing the same CNF expression — builder combinators,
        parser text, hand-built tuples — produce literally the same
        structure (and therefore the same checkpoint bytes).  ``window``,
        ``duration``, ``query_id`` and ``name`` are preserved.  Returns
        ``self`` when already canonical.
        """
        clauses: List[Disjunction] = []
        seen: Set[Tuple[Tuple[str, int, int], ...]] = set()
        for disjunction in self.disjunctions:
            ordered = disjunction.canonical()
            key = ordered.sort_key()
            if key not in seen:
                seen.add(key)
                clauses.append(ordered)
        clauses.sort(key=Disjunction.sort_key)
        ordered_clauses = tuple(clauses)
        if ordered_clauses == self.disjunctions:
            return self
        return CNFQuery(
            ordered_clauses,
            window=self.window,
            duration=self.duration,
            query_id=self.query_id,
            name=self.name,
        )

    def structural_key(self) -> "_StructuralKey":
        """Hashable identity of the query's semantics (canonical clauses +
        temporal parameters); the basis of ``__eq__`` and ``__hash__``.

        Memoised per instance (the dataclass is frozen, so the key can
        never change): equality scans over standing workloads and dict/set
        use would otherwise re-canonicalise on every comparison.
        """
        cached: Optional[_StructuralKey] = self.__dict__.get("_structural_key")
        if cached is None:
            canonical = self.canonical()
            cached = (
                tuple(d.sort_key() for d in canonical.disjunctions),
                self.window,
                self.duration,
            )
            object.__setattr__(self, "_structural_key", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNFQuery):
            return NotImplemented
        return self.structural_key() == other.structural_key()

    def __hash__(self) -> int:
        return hash(self.structural_key())

    # ------------------------------------------------------------------
    # Evaluation and inspection
    # ------------------------------------------------------------------
    def evaluate(self, counts: Mapping[str, int]) -> bool:
        """Direct (index-free) evaluation against per-class counts.

        Used as the brute-force oracle in tests and by small workloads.
        """
        return all(disjunction.evaluate(counts) for disjunction in self.disjunctions)

    def labels(self) -> FrozenSet[str]:
        """All class labels referenced by the query."""
        return frozenset(
            itertools.chain.from_iterable(d.labels() for d in self.disjunctions)
        )

    def conditions(self) -> List[Condition]:
        """All atomic conditions of the query, in disjunction order."""
        return [c for d in self.disjunctions for c in d.conditions]

    def uses_only_ge(self) -> bool:
        """True when every condition uses ``>=`` (enables Proposition-1 pruning)."""
        return all(c.comparison is Comparison.GE for c in self.conditions())

    def min_threshold(self) -> int:
        """The smallest threshold used by any condition (``n_min`` in Figure 9)."""
        return min(c.threshold for c in self.conditions())

    def __str__(self) -> str:
        return " AND ".join(f"({d})" for d in self.disjunctions)


def class_counts(labels: Iterable[str]) -> Dict[str, int]:
    """Aggregate an iterable of class labels into per-class counts."""
    counts: Dict[str, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return counts


@dataclass(frozen=True)
class MembershipQuery:
    """A CNF query over set-membership predicates (CNFEval's native form)."""

    disjunctions: Tuple[Tuple[MembershipCondition, ...], ...]
    query_id: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.disjunctions or any(not d for d in self.disjunctions):
            raise ValueError("membership queries need at least one condition per disjunction")

    def evaluate(self, assignment: Mapping[str, str]) -> bool:
        """Direct evaluation against an attribute assignment."""
        return all(
            any(cond.evaluate(assignment) for cond in disjunction)
            for disjunction in self.disjunctions
        )

    def with_id(self, query_id: int) -> "MembershipQuery":
        """Return a copy carrying the given identifier."""
        return MembershipQuery(self.disjunctions, query_id=query_id)
