"""Fluent builder for CNF count queries.

The builder is the programmatic twin of the text grammar: ``Q("car") >= 2``
creates an atomic condition expression, and expressions combine with ``&``
(AND) and ``|`` (OR)::

    expr = (Q("car") >= 2) & ((Q("person") <= 3) | (Q("truck") >= 1))
    query = expr.to_query(window=90, duration=45, name="incident")

Expressions are kept in conjunctive normal form as they are combined (``|``
distributes over the conjuncts), and :meth:`QueryExpr.to_query` emits the
*canonical* :class:`~repro.query.model.CNFQuery` — sorted, deduplicated
clauses — so builder- and parser-produced queries compare, hash and
checkpoint identically.  :func:`repro.query.parser.parse_query` is a thin
wrapper over this module.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.query.model import DEFAULT_DURATION, DEFAULT_WINDOW, CNFQuery, Comparison, Condition

#: One CNF clause: a disjunction of atomic conditions.
Clause = Tuple[Condition, ...]


class QueryExpr:
    """A CNF expression fragment: combine with ``&`` / ``|``, finish with
    :meth:`to_query`.

    Instances are immutable and always hold a valid CNF clause list; the
    operators never mutate their operands, so sub-expressions can be shared
    and recombined freely.
    """

    __slots__ = ("_clauses",)

    def __init__(self, clauses: Iterable[Iterable[Condition]]) -> None:
        normalized = tuple(tuple(clause) for clause in clauses)
        if not normalized or any(not clause for clause in normalized):
            raise ValueError("a query expression needs at least one condition")
        self._clauses: Tuple[Clause, ...] = normalized

    @classmethod
    def atom(cls, condition: Condition) -> "QueryExpr":
        """Wrap a single atomic condition."""
        return cls(((condition,),))

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        """The CNF clauses (conjunction of disjunctions) of the expression."""
        return self._clauses

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def __and__(self, other: "QueryExpr") -> "QueryExpr":
        if not isinstance(other, QueryExpr):
            return NotImplemented
        return QueryExpr(self._clauses + other._clauses)

    def __or__(self, other: "QueryExpr") -> "QueryExpr":
        if not isinstance(other, QueryExpr):
            return NotImplemented
        # OR distributes over both operands' conjuncts, keeping the result
        # in CNF: (a AND b) OR (c AND d) = (a OR c)(a OR d)(b OR c)(b OR d).
        return QueryExpr(
            tuple(left + right for left in self._clauses for right in other._clauses)
        )

    def __bool__(self) -> bool:
        raise TypeError(
            "query expressions do not have a truth value; combine them with "
            "'&' and '|' (not the 'and'/'or' keywords)"
        )

    # ------------------------------------------------------------------
    # Finishers
    # ------------------------------------------------------------------
    def to_query(
        self,
        window: int = DEFAULT_WINDOW,
        duration: int = DEFAULT_DURATION,
        name: str = "",
    ) -> CNFQuery:
        """Normalise the expression into a canonical :class:`CNFQuery`."""
        return CNFQuery.from_condition_lists(
            [
                [(c.label, c.comparison.value, c.threshold) for c in clause]
                for clause in self._clauses
            ],
            window=window,
            duration=duration,
            name=name,
        ).canonical()

    def __str__(self) -> str:
        return " AND ".join(
            "(" + " OR ".join(str(c) for c in clause) + ")"
            for clause in self._clauses
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"QueryExpr({self})"


class Q:
    """Atom factory of the fluent builder: ``Q("car") >= 2``.

    The comparison operators (``>=``, ``<=``, ``==``) and their named
    aliases (:meth:`at_least`, :meth:`at_most`, :meth:`exactly`) return a
    :class:`QueryExpr` ready for combination with ``&`` / ``|``.
    """

    __slots__ = ("_label",)

    def __init__(self, label: str) -> None:
        self._label = label

    @property
    def label(self) -> str:
        """The class label the atom will constrain."""
        return self._label

    def _condition(self, comparison: Comparison, threshold: int) -> QueryExpr:
        return QueryExpr.atom(Condition(self._label, comparison, int(threshold)))

    def __ge__(self, threshold: int) -> QueryExpr:
        return self._condition(Comparison.GE, threshold)

    def __le__(self, threshold: int) -> QueryExpr:
        return self._condition(Comparison.LE, threshold)

    def __eq__(self, threshold: int) -> QueryExpr:  # type: ignore[override]
        return self._condition(Comparison.EQ, threshold)

    # ``__eq__`` no longer implements identity, so opt out of hashing (the
    # factory is ephemeral; expressions, not atoms, are the durable values).
    __hash__ = None  # type: ignore[assignment]

    def at_least(self, threshold: int) -> QueryExpr:
        """Named alias of ``Q(label) >= threshold``."""
        return self.__ge__(threshold)

    def at_most(self, threshold: int) -> QueryExpr:
        """Named alias of ``Q(label) <= threshold``."""
        return self.__le__(threshold)

    def exactly(self, threshold: int) -> QueryExpr:
        """Named alias of ``Q(label) == threshold``."""
        return self._condition(Comparison.EQ, threshold)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Q({self._label!r})"
