"""CNF temporal queries over video feeds and their evaluation.

Queries (Section 2 of the paper) are Conjunctive Normal Form expressions
whose atomic conditions constrain the number of objects of a class inside a
Maximum Co-occurrence Object Set, e.g. ``car >= 2 AND (person <= 3 OR
truck >= 1)``, evaluated with a window size ``w`` and duration ``d``.

The evaluation machinery follows Section 5:

* :mod:`repro.query.cnf_eval` implements the Boolean-expression inverted
  index of Whang et al. for set-membership predicates (``CNFEval``);
* :mod:`repro.query.inequality` extends it with ordered ``>= / <= / =``
  indexes (``CNFEvalE``);
* :mod:`repro.query.evaluator` applies the index to the result state sets
  produced by the MCOS generation layer;
* :mod:`repro.query.pruning` implements the Proposition-1 state pruning used
  by the optimised ``MFS_O`` / ``SSG_O`` variants.
"""

from repro.query.builder import Q, QueryExpr
from repro.query.cnf_eval import CNFEvalIndex
from repro.query.evaluator import QueryEvaluator, QueryMatch
from repro.query.inequality import CNFEvalEIndex
from repro.query.model import (
    CNFQuery,
    Comparison,
    Condition,
    Disjunction,
    MembershipCondition,
)
from repro.query.parser import parse_expression, parse_query
from repro.query.pruning import StatePruner, queries_support_pruning

__all__ = [
    "Comparison",
    "Condition",
    "MembershipCondition",
    "Disjunction",
    "CNFQuery",
    "Q",
    "QueryExpr",
    "parse_expression",
    "parse_query",
    "CNFEvalIndex",
    "CNFEvalEIndex",
    "QueryEvaluator",
    "QueryMatch",
    "StatePruner",
    "queries_support_pruning",
]
