"""CNFEval: inverted-index evaluation of CNF membership queries.

This module implements the Boolean-expression indexing algorithm the paper
adopts from Whang et al. ("Indexing Boolean Expressions", Section 5.1): every
registered query contributes, for each of its atomic conditions, posting-list
entries of the form ``(query_id, predicate, disjunction_id)`` keyed by the
``(attribute, value)`` pair of the condition.  Evaluating an input (a set of
attribute/value pairs) retrieves the matching posting lists and decides each
query by counting how many of its disjunctions are satisfied.

Negated (``not in``) conditions are handled the standard way: a disjunction
containing ``k`` negated conditions is satisfied by default unless all of them
are violated, so the evaluator counts violations per disjunction and compares
against ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Set, Tuple

from repro.query.model import MembershipCondition, MembershipQuery


@dataclass(frozen=True)
class PostingEntry:
    """One entry of a posting list: ``(qid, predicate, disjId)`` in the paper."""

    query_id: int
    negated: bool
    disjunction_id: int


class CNFEvalIndex:
    """Inverted index over CNF membership queries.

    Queries are registered with :meth:`add_query` (which assigns identifiers
    when missing) and can be removed with :meth:`remove_query`; the index is
    maintained dynamically as in the original algorithm.
    """

    def __init__(self, queries: Iterable[MembershipQuery] = ()):
        self._postings: Dict[Tuple[str, str], List[PostingEntry]] = {}
        self._queries: Dict[int, MembershipQuery] = {}
        #: Per query: number of disjunctions (needed to decide satisfaction).
        self._disjunction_counts: Dict[int, int] = {}
        #: Per (query, disjunction): number of negated conditions.
        self._negated_counts: Dict[Tuple[int, int], int] = {}
        self._next_id = 0
        for query in queries:
            self.add_query(query)

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def add_query(self, query: MembershipQuery) -> MembershipQuery:
        """Register a query; returns the copy carrying its assigned id."""
        if query.query_id is None:
            query = query.with_id(self._next_id)
        self._next_id = max(self._next_id, query.query_id + 1)
        if query.query_id in self._queries:
            raise ValueError(f"duplicate query id {query.query_id}")
        self._queries[query.query_id] = query
        self._disjunction_counts[query.query_id] = len(query.disjunctions)
        for disj_id, disjunction in enumerate(query.disjunctions):
            negated = 0
            for condition in disjunction:
                if condition.negated:
                    negated += 1
                self._index_condition(query.query_id, disj_id, condition)
            self._negated_counts[(query.query_id, disj_id)] = negated
        return query

    def _index_condition(
        self, query_id: int, disj_id: int, condition: MembershipCondition
    ) -> None:
        entry = PostingEntry(query_id, condition.negated, disj_id)
        for value in condition.values:
            key = (condition.attribute, value)
            self._postings.setdefault(key, []).append(entry)

    def remove_query(self, query_id: int) -> None:
        """Remove a query and its posting entries from the index."""
        if query_id not in self._queries:
            raise KeyError(f"unknown query id {query_id}")
        del self._queries[query_id]
        del self._disjunction_counts[query_id]
        self._negated_counts = {
            key: value
            for key, value in self._negated_counts.items()
            if key[0] != query_id
        }
        for key in list(self._postings):
            remaining = [e for e in self._postings[key] if e.query_id != query_id]
            if remaining:
                self._postings[key] = remaining
            else:
                del self._postings[key]

    def __len__(self) -> int:
        return len(self._queries)

    @property
    def queries(self) -> Dict[int, MembershipQuery]:
        """Registered queries keyed by id (read-only view by convention)."""
        return self._queries

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def matching_queries(self, assignment: Mapping[str, str]) -> Set[int]:
        """Return the ids of all registered queries satisfied by ``assignment``.

        ``assignment`` maps attribute names to their (single) values, e.g.
        ``{"age": "3", "gender": "F"}``.
        """
        positive_hits: Dict[Tuple[int, int], bool] = {}
        negated_violations: Dict[Tuple[int, int], int] = {}

        for attribute, value in assignment.items():
            for entry in self._postings.get((attribute, value), ()):
                key = (entry.query_id, entry.disjunction_id)
                if entry.negated:
                    negated_violations[key] = negated_violations.get(key, 0) + 1
                else:
                    positive_hits[key] = True

        matches: Set[int] = set()
        for query_id, query in self._queries.items():
            satisfied = 0
            for disj_id in range(self._disjunction_counts[query_id]):
                key = (query_id, disj_id)
                if positive_hits.get(key):
                    satisfied += 1
                    continue
                negated_total = self._negated_counts.get(key, 0)
                if negated_total and negated_violations.get(key, 0) < negated_total:
                    # At least one "not in" condition remains unviolated.
                    satisfied += 1
            if satisfied == self._disjunction_counts[query_id]:
                matches.add(query_id)
        return matches
