"""CNFEvalE: CNF evaluation with inequality predicates (Section 5.2).

The original CNFEval algorithm only supports set-membership predicates.  The
paper extends it to the count conditions ``label theta n`` (theta in
``<=, =, >=``) by building three separate inverted indexes, one per operator,
keyed by the class label.  Each key is associated with a posting list ordered
by threshold value: ascending for ``>=`` (so that all thresholds ``<= count``
form a prefix) and descending for ``<=`` (so that all thresholds ``>= count``
form a prefix).  Given the per-class aggregate counts of an MCOS, the
evaluator scans only those prefixes and the exact-match bucket of ``=``,
collects the satisfied ``(query, disjunction)`` pairs and reports the queries
whose disjunctions are all satisfied.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.query.model import CNFQuery, Comparison


@dataclass(frozen=True)
class CountPosting:
    """One posting entry: the ``(qid, disjId)`` pair of a count condition."""

    query_id: int
    disjunction_id: int


class _OrderedIndex:
    """Posting lists per label, ordered by threshold value.

    ``ascending=True`` orders thresholds ascending (used by the ``>=`` index);
    ``ascending=False`` orders them descending (used by the ``<=`` index).
    """

    def __init__(self, ascending: bool):
        self._ascending = ascending
        # label -> sorted list of thresholds (always ascending internally;
        # the prefix/suffix logic below accounts for direction).
        self._thresholds: Dict[str, List[int]] = {}
        self._postings: Dict[Tuple[str, int], List[CountPosting]] = {}

    def add(self, label: str, threshold: int, posting: CountPosting) -> None:
        key = (label, threshold)
        if key not in self._postings:
            thresholds = self._thresholds.setdefault(label, [])
            bisect.insort(thresholds, threshold)
            self._postings[key] = []
        self._postings[key].append(posting)

    def labels(self) -> Iterable[str]:
        return self._thresholds.keys()

    def probe(self, label: str, count: int) -> Iterable[CountPosting]:
        """Yield the postings of every satisfied condition for ``label``.

        For the ``>=`` index these are conditions with ``threshold <= count``;
        for the ``<=`` index, conditions with ``threshold >= count``.
        """
        thresholds = self._thresholds.get(label)
        if not thresholds:
            return
        if self._ascending:
            end = bisect.bisect_right(thresholds, count)
            selected = thresholds[:end]
        else:
            start = bisect.bisect_left(thresholds, count)
            selected = thresholds[start:]
        for threshold in selected:
            yield from self._postings[(label, threshold)]


class CNFEvalEIndex:
    """Inverted-index evaluator for CNF count queries (the CNFEvalE algorithm)."""

    def __init__(self, queries: Iterable[CNFQuery] = ()):
        self._ge_index = _OrderedIndex(ascending=True)
        self._le_index = _OrderedIndex(ascending=False)
        self._eq_index: Dict[Tuple[str, int], List[CountPosting]] = {}
        self._eq_labels: Set[str] = set()
        self._queries: Dict[int, CNFQuery] = {}
        self._disjunction_counts: Dict[int, int] = {}
        self._next_id = 0
        for query in queries:
            self.add_query(query)

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def add_query(self, query: CNFQuery) -> CNFQuery:
        """Register a query; returns the copy carrying its assigned id."""
        if query.query_id is None:
            query = query.with_id(self._next_id)
        self._next_id = max(self._next_id, query.query_id + 1)
        if query.query_id in self._queries:
            raise ValueError(f"duplicate query id {query.query_id}")
        self._queries[query.query_id] = query
        self._disjunction_counts[query.query_id] = len(query.disjunctions)
        for disj_id, disjunction in enumerate(query.disjunctions):
            for condition in disjunction.conditions:
                posting = CountPosting(query.query_id, disj_id)
                if condition.comparison is Comparison.GE:
                    self._ge_index.add(condition.label, condition.threshold, posting)
                elif condition.comparison is Comparison.LE:
                    self._le_index.add(condition.label, condition.threshold, posting)
                else:
                    key = (condition.label, condition.threshold)
                    self._eq_index.setdefault(key, []).append(posting)
                    self._eq_labels.add(condition.label)
        return query

    def remove_query(self, query_id: int) -> CNFQuery:
        """Unregister a query and rebuild the posting lists without it.

        Posting lists are append-only structures (threshold-ordered prefix
        scans), so removal rebuilds the three indexes from the remaining
        queries — an O(total conditions) operation that only runs on the
        explicit cancellation path, never per frame.  The id counter is
        preserved: a cancelled id is never handed out again.
        """
        removed = self._queries.pop(query_id, None)
        if removed is None:
            raise KeyError(f"no registered query with id {query_id}")
        remaining = list(self._queries.values())
        # ``_next_id`` is deliberately left untouched: it never shrinks, so
        # the cancelled id stays tombstoned and is never handed out again.
        self._ge_index = _OrderedIndex(ascending=True)
        self._le_index = _OrderedIndex(ascending=False)
        self._eq_index = {}
        self._eq_labels = set()
        self._queries = {}
        self._disjunction_counts = {}
        for query in remaining:
            self.add_query(query)
        return removed

    @property
    def next_query_id(self) -> int:
        """The id floor: the smallest id a future auto-assignment may use.

        Never decreases — cancelled ids below it stay tombstoned.  Stored
        in engine checkpoints so the no-reuse guarantee survives restores.
        """
        return self._next_id

    def reserve_ids(self, next_query_id: int) -> None:
        """Raise the id floor (checkpoint restore path; never lowers it)."""
        self._next_id = max(self._next_id, int(next_query_id))

    def __len__(self) -> int:
        return len(self._queries)

    @property
    def queries(self) -> Dict[int, CNFQuery]:
        """Registered queries keyed by id."""
        return self._queries

    def query(self, query_id: int) -> CNFQuery:
        """Return a registered query by id."""
        return self._queries[query_id]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _relevant_labels(self, counts: Mapping[str, int]) -> Set[str]:
        """Labels that must be probed: those in the input plus every indexed
        label whose conditions could be satisfied by a zero count."""
        labels: Set[str] = set(counts)
        labels.update(self._le_index.labels())
        labels.update(self._eq_labels)
        labels.update(self._ge_index.labels())
        return labels

    def matching_queries(self, counts: Mapping[str, int]) -> Set[int]:
        """Return ids of all queries satisfied by the per-class counts.

        Labels absent from ``counts`` are treated as count 0, so conditions
        such as ``person <= 3`` hold when no person is part of the MCOS.
        """
        satisfied_pairs: Set[Tuple[int, int]] = set()
        for label in self._relevant_labels(counts):
            count = counts.get(label, 0)
            for posting in self._ge_index.probe(label, count):
                satisfied_pairs.add((posting.query_id, posting.disjunction_id))
            for posting in self._le_index.probe(label, count):
                satisfied_pairs.add((posting.query_id, posting.disjunction_id))
            for posting in self._eq_index.get((label, count), ()):
                satisfied_pairs.add((posting.query_id, posting.disjunction_id))

        per_query: Dict[int, int] = {}
        for query_id, _disj_id in satisfied_pairs:
            per_query[query_id] = per_query.get(query_id, 0) + 1
        return {
            query_id
            for query_id, hits in per_query.items()
            if hits == self._disjunction_counts[query_id]
        }

    def any_match(self, counts: Mapping[str, int]) -> bool:
        """True when at least one registered query is satisfied by ``counts``."""
        return bool(self.matching_queries(counts))
