"""The end-to-end temporal video query engine.

A :class:`TemporalVideoQueryEngine` accepts a set of CNF queries sharing the
same window/duration parameters, builds the query evaluation index, selects an
MCOS generation strategy, and then consumes a structured relation frame by
frame, reporting query matches as the window slides -- exactly the data flow
of Figure 2 in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.base import GeneratorStats, MCOSGenerator
from repro.core.interning import ObjectInterner
from repro.core.result import ResultStateSet
from repro.datamodel.observation import FrameObservation
from repro.datamodel.relation import VideoRelation
from repro.engine.config import EngineConfig, MCOSMethod
from repro.query.evaluator import QueryEvaluator, QueryMatch
from repro.query.model import CNFQuery
from repro.query.pruning import StatePruner, queries_support_pruning


@dataclass
class EngineRunResult:
    """Aggregated outcome of running the engine over a relation."""

    method: str
    matches: List[QueryMatch]
    frames_processed: int
    mcos_seconds: float
    evaluation_seconds: float
    generator_stats: GeneratorStats
    result_states: int = 0

    @property
    def total_seconds(self) -> float:
        """MCOS generation plus query evaluation time."""
        return self.mcos_seconds + self.evaluation_seconds

    def matches_by_query(self) -> Dict[int, List[QueryMatch]]:
        """Group the produced matches by query identifier."""
        grouped: Dict[int, List[QueryMatch]] = {}
        for match in self.matches:
            grouped.setdefault(match.query_id, []).append(match)
        return grouped


class TemporalVideoQueryEngine:
    """Evaluates CNF temporal queries over a video feed relation."""

    def __init__(self, queries: Iterable[CNFQuery], config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self.evaluator = QueryEvaluator()
        self._queries: List[CNFQuery] = []
        for query in queries:
            self._queries.append(self.evaluator.add_query(query))
        if not self._queries:
            raise ValueError("the engine needs at least one query")

        self._pruner: Optional[StatePruner] = None
        if self.config.enable_pruning:
            if not queries_support_pruning(self._queries):
                raise ValueError(
                    "pruning (the *_O variants) requires all query conditions to use '>='"
                )
            self._pruner = StatePruner(self.evaluator)

        self._labels: Dict[int, str] = {}
        #: Engine-owned object interner, shared with every generator the
        #: engine builds: masks stay compatible (and narrow, via recycling)
        #: across resets, which matters for long-running feeds.
        self.interner = ObjectInterner()
        self.generator = self._build_generator()
        self._mcos_seconds = 0.0
        self._evaluation_seconds = 0.0
        self._frames_processed = 0
        self._result_states = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_generator(self) -> MCOSGenerator:
        labels_of_interest = (
            self.evaluator.labels_of_interest() if self.config.restrict_labels else None
        )
        generator_class = self.config.method.generator_class
        return generator_class(
            window_size=self.config.window_size,
            duration=self.config.duration,
            labels_of_interest=labels_of_interest,
            state_filter=self._pruner,
            interner=self.interner,
        )

    @property
    def queries(self) -> List[CNFQuery]:
        """The registered queries (with assigned identifiers)."""
        return list(self._queries)

    @property
    def method_label(self) -> str:
        """Method name including the ``_O`` suffix when pruning is enabled."""
        return self.config.method_label

    # ------------------------------------------------------------------
    # Streaming API
    # ------------------------------------------------------------------
    def process_frame(self, frame: FrameObservation) -> List[QueryMatch]:
        """Process one frame and return the query matches of the new window."""
        for oid in frame.object_ids:
            self._labels.setdefault(oid, frame.label_of(oid))

        start = time.perf_counter()
        results: ResultStateSet = self.generator.process_frame(frame)
        self._mcos_seconds += time.perf_counter() - start

        start = time.perf_counter()
        matches = self.evaluator.evaluate_result_set(results, self._labels)
        self._evaluation_seconds += time.perf_counter() - start

        self._frames_processed += 1
        self._result_states += len(results)
        return matches

    def stream(self, relation: VideoRelation) -> Iterator[List[QueryMatch]]:
        """Yield the per-frame query matches for an entire relation."""
        for frame in relation.frames():
            yield self.process_frame(frame)

    def run(self, relation: VideoRelation) -> EngineRunResult:
        """Process a whole relation and return the aggregated result."""
        matches: List[QueryMatch] = []
        for frame_matches in self.stream(relation):
            matches.extend(frame_matches)
        return EngineRunResult(
            method=self.method_label,
            matches=matches,
            frames_processed=self._frames_processed,
            mcos_seconds=self._mcos_seconds,
            evaluation_seconds=self._evaluation_seconds,
            generator_stats=self.generator.stats,
            result_states=self._result_states,
        )

    def reset(self) -> None:
        """Reset the engine to process another relation from scratch.

        The interner survives the reset: released bit positions are recycled,
        so masks stay narrow no matter how many relations the engine serves.
        """
        self.interner.compact(0)
        self.generator = self._build_generator()
        self._labels = {}
        self._mcos_seconds = 0.0
        self._evaluation_seconds = 0.0
        self._frames_processed = 0
        self._result_states = 0
