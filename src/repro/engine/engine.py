"""The end-to-end temporal video query engine.

A :class:`TemporalVideoQueryEngine` accepts a set of CNF queries sharing the
same window/duration parameters, builds the query evaluation index, selects an
MCOS generation strategy, and then consumes a structured relation frame by
frame, reporting query matches as the window slides -- exactly the data flow
of Figure 2 in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.base import GeneratorStats, MCOSGenerator
from repro.core.interning import ObjectInterner
from repro.core.result import ResultStateSet
from repro.datamodel.observation import FrameObservation
from repro.datamodel.relation import VideoRelation
from repro.engine.config import EngineConfig, MCOSMethod
from repro.query.evaluator import QueryEvaluator, QueryMatch
from repro.query.model import CNFQuery
from repro.query.pruning import StatePruner, require_pruning_compatible


@dataclass
class EngineRunResult:
    """Aggregated outcome of running the engine over a relation."""

    method: str
    matches: List[QueryMatch]
    frames_processed: int
    mcos_seconds: float
    evaluation_seconds: float
    generator_stats: GeneratorStats
    result_states: int = 0

    @property
    def total_seconds(self) -> float:
        """MCOS generation plus query evaluation time."""
        return self.mcos_seconds + self.evaluation_seconds

    def matches_by_query(self) -> Dict[int, List[QueryMatch]]:
        """Group the produced matches by query identifier."""
        grouped: Dict[int, List[QueryMatch]] = {}
        for match in self.matches:
            grouped.setdefault(match.query_id, []).append(match)
        return grouped


class TemporalVideoQueryEngine:
    """Evaluates CNF temporal queries over a video feed relation."""

    def __init__(self, queries: Iterable[CNFQuery], config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self.evaluator = QueryEvaluator()
        self._queries: List[CNFQuery] = []
        for query in queries:
            self._queries.append(self.evaluator.add_query(query))
        if not self._queries:
            raise ValueError("the engine needs at least one query")

        self._pruner: Optional[StatePruner] = None  # repro-lint: disable=CKPT-DRIFT -- stateless policy object, rebuilt from config.enable_pruning on restore
        if self.config.enable_pruning:
            for query in self._queries:
                require_pruning_compatible(query)
            self._pruner = StatePruner(self.evaluator)

        self._labels: Dict[int, str] = {}
        #: Engine-owned object interner, shared with every generator the
        #: engine builds: masks stay compatible (and narrow, via recycling)
        #: across resets, which matters for long-running feeds.
        self.interner = ObjectInterner()  # repro-lint: disable=CKPT-DRIFT -- shared reference; the generator's checkpoint round-trips the interner
        self.generator = self._build_generator()
        self._mcos_seconds = 0.0
        self._evaluation_seconds = 0.0
        self._frames_processed = 0
        self._result_states = 0
        #: Prune the engine's label map every this many frames (aligned with
        #: the generators' interner-compaction cadence), keeping long-running
        #: memory bounded by the window population.
        self._prune_labels_every = 4 * self.config.window_size  # repro-lint: disable=CKPT-DRIFT -- derived from config.window_size, which round-trips

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_generator(self) -> MCOSGenerator:
        labels_of_interest = (
            self.evaluator.labels_of_interest() if self.config.restrict_labels else None
        )
        generator_class = self.config.method.generator_class
        return generator_class(
            window_size=self.config.window_size,
            duration=self.config.duration,
            labels_of_interest=labels_of_interest,
            state_filter=self._pruner,
            interner=self.interner,
        )

    @property
    def queries(self) -> List[CNFQuery]:
        """The registered queries (with assigned identifiers)."""
        return list(self._queries)

    # ------------------------------------------------------------------
    # Live query lifecycle
    # ------------------------------------------------------------------
    def register_query(self, query: CNFQuery) -> CNFQuery:
        """Add a query to a (possibly mid-stream) engine.

        The query joins the evaluator index immediately and the label
        projection widens to cover its classes, so it is evaluated from the
        next processed frame on.  States already in the window were built
        without the query's classes; results for the new query are
        guaranteed to equal a present-from-frame-0 run only from one full
        window after registration (the warm-up watermark the session layer
        reports).  Returns the registered copy carrying its assigned id.
        """
        if (query.window, query.duration) != (
            self.config.window_size,
            self.config.duration,
        ):
            raise ValueError(
                f"query window group ({query.window}, {query.duration}) does "
                f"not match the engine's ({self.config.window_size}, "
                f"{self.config.duration})"
            )
        if self._pruner is not None:
            require_pruning_compatible(query)
        registered = self.evaluator.add_query(query)
        self._queries.append(registered)
        self._sync_label_projection()
        return registered

    def cancel_query(self, query_id: int) -> CNFQuery:
        """Remove a registered query mid-stream.

        The query's evaluator postings are dropped (the index is rebuilt
        from the survivors), its id is tombstoned inside the evaluator so it
        is never reassigned, pruning immediately stops keeping states alive
        on its behalf, and the label projection narrows to the remaining
        queries' classes.  Cancelling the last query is refused — retire the
        engine (or its shard) instead, which also releases the window state.
        """
        if not any(q.query_id == query_id for q in self._queries):
            raise KeyError(f"no registered query with id {query_id}")
        if len(self._queries) == 1:
            raise ValueError(
                "cancelling the last query would leave the engine without a "
                "workload; retire the engine (or its shard) instead"
            )
        removed = self.evaluator.remove_query(query_id)
        self._queries = [q for q in self._queries if q.query_id != query_id]
        self._sync_label_projection()
        return removed

    def _sync_label_projection(self) -> None:
        """Re-point the generator's label projection at the current queries."""
        if self.config.restrict_labels:
            self.generator.set_labels_of_interest(
                self.evaluator.labels_of_interest()
            )

    @property
    def method_label(self) -> str:
        """Method name including the ``_O`` suffix when pruning is enabled."""
        return self.config.method_label

    @property
    def frames_processed(self) -> int:
        """Frames the engine has consumed so far."""
        return self._frames_processed

    @property
    def result_states(self) -> int:
        """Result states examined across all processed frames."""
        return self._result_states

    @property
    def mcos_seconds(self) -> float:
        """Cumulative wall-clock seconds spent in MCOS generation."""
        return self._mcos_seconds

    @property
    def evaluation_seconds(self) -> float:
        """Cumulative wall-clock seconds spent in query evaluation."""
        return self._evaluation_seconds

    # ------------------------------------------------------------------
    # Streaming API
    # ------------------------------------------------------------------
    def process_frame(self, frame: FrameObservation) -> List[QueryMatch]:
        """Process one frame and return the query matches of the new window."""
        for oid in frame.object_ids:
            self._labels.setdefault(oid, frame.label_of(oid))

        start = time.perf_counter()
        results: ResultStateSet = self.generator.process_frame(frame)
        self._mcos_seconds += time.perf_counter() - start

        start = time.perf_counter()
        matches = self.evaluator.evaluate_result_set(results, self._labels)
        self._evaluation_seconds += time.perf_counter() - start

        self._frames_processed += 1
        self._result_states += len(results)
        if self._frames_processed % self._prune_labels_every == 0:
            self._prune_labels()
        return matches

    def _prune_labels(self) -> None:
        """Drop labels of objects no live state references.

        Evaluation only ever looks up labels of reported states' objects,
        which are all interned — so after compacting the interner to the
        live population, any label outside it can never be needed again.
        Without this, ``_labels`` (and hence checkpoint size) would grow
        with every distinct tracker id the feed ever produced, the one
        structure not bounded by the window.
        """
        self.generator.compact_interner()
        interner = self.interner
        self._labels = {
            oid: label for oid, label in self._labels.items() if oid in interner
        }

    def stream(self, relation: VideoRelation) -> Iterator[List[QueryMatch]]:
        """Yield the per-frame query matches for an entire relation."""
        for frame in relation.frames():
            yield self.process_frame(frame)

    def run(self, relation: VideoRelation) -> EngineRunResult:
        """Process a whole relation and return the aggregated result."""
        matches: List[QueryMatch] = []
        for frame_matches in self.stream(relation):
            matches.extend(frame_matches)
        return EngineRunResult(
            method=self.method_label,
            matches=matches,
            frames_processed=self._frames_processed,
            mcos_seconds=self._mcos_seconds,
            evaluation_seconds=self._evaluation_seconds,
            generator_stats=self.generator.stats,
            result_states=self._result_states,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _config_dict(self) -> Dict:
        """The semantics-affecting config fields, as stored in checkpoints.

        Single source of truth for :meth:`checkpoint`, :meth:`restore`'s
        validation and :meth:`from_checkpoint`'s parsing: a future config
        field added here is automatically serialised *and* validated.
        """
        return {
            "method": self.config.method.value,
            "window_size": self.config.window_size,
            "duration": self.config.duration,
            "enable_pruning": self.config.enable_pruning,
            "restrict_labels": self.config.restrict_labels,
        }

    def checkpoint(self) -> Dict:
        """Snapshot the engine between frames (JSON-serialisable).

        The snapshot is self-contained: it embeds the configuration and the
        registered queries, so :meth:`from_checkpoint` can resume the stream
        byte-identically in a fresh process.  Only call between frames.
        """
        return {
            "config": self._config_dict(),
            "queries": [query.to_dict() for query in self._queries],
            #: Evaluator id floor: keeps cancelled-query ids tombstoned
            #: across a restore (ids must never be reused — a drained match
            #: would otherwise be ambiguous between old and new query).
            "next_query_id": self.evaluator.index.next_query_id,
            "labels": [[oid, label] for oid, label in self._labels.items()],
            "counters": {
                "mcos_seconds": self._mcos_seconds,
                "evaluation_seconds": self._evaluation_seconds,
                "frames_processed": self._frames_processed,
                "result_states": self._result_states,
            },
            "generator": self.generator.export_checkpoint(),
        }

    def restore(self, payload: Dict) -> None:
        """Restore labels, counters and generator state from a checkpoint.

        The engine must be configured identically to the snapshot
        (:meth:`from_checkpoint` guarantees this; direct callers are checked
        here) — a silent config mismatch would change semantics mid-stream.
        """
        config = payload.get("config", {})
        own = self._config_dict()
        mismatched = {
            key: (config.get(key), value)
            for key, value in own.items()
            if config.get(key) != value
        }
        if mismatched:
            raise ValueError(
                f"checkpoint config does not match the engine's: {mismatched}"
            )
        own_queries = [query.to_dict() for query in self._queries]
        if payload.get("queries") != own_queries:
            raise ValueError(
                "checkpoint queries do not match the engine's registered "
                "queries; resuming would evaluate the wrong workload"
            )
        next_qid = payload.get("next_query_id")  # absent in older snapshots
        if next_qid is not None:
            self.evaluator.index.reserve_ids(int(next_qid))
        self._labels = {int(oid): label for oid, label in payload["labels"]}
        counters = payload["counters"]
        self._mcos_seconds = float(counters["mcos_seconds"])
        self._evaluation_seconds = float(counters["evaluation_seconds"])
        self._frames_processed = int(counters["frames_processed"])
        self._result_states = int(counters["result_states"])
        self.generator.import_checkpoint(payload["generator"])

    def export_state(self) -> bytes:
        """The :meth:`checkpoint` snapshot as compact checkpoint bytes.

        This is the byte-level hand-off form: self-contained (config and
        queries included), canonical, and written with the streaming codec's
        current compact version.  :meth:`import_state` and
        :meth:`from_state` accept any supported version.
        """
        # Lazy import: the streaming package imports this module, so a
        # module-scope import here would be circular.
        from repro.streaming.checkpoint import to_bytes

        return to_bytes("engine", self.checkpoint())

    def import_state(self, data: bytes) -> None:
        """Restore this engine from :meth:`export_state` bytes.

        The engine must be configured identically to the snapshot (see
        :meth:`restore`); use :meth:`from_state` to rebuild from scratch.
        """
        from repro.streaming.checkpoint import from_bytes

        self.restore(from_bytes(data, expect_kind="engine"))

    @classmethod
    def from_state(cls, data: bytes) -> "TemporalVideoQueryEngine":
        """Rebuild an engine (typically in a fresh process) from state bytes."""
        from repro.streaming.checkpoint import from_bytes

        return cls.from_checkpoint(from_bytes(data, expect_kind="engine"))

    @classmethod
    def from_checkpoint(cls, payload: Dict) -> "TemporalVideoQueryEngine":
        """Rebuild an engine from a :meth:`checkpoint` snapshot.

        Queries are re-registered in their checkpointed order (ids are stored
        in the snapshot, so assignments cannot drift), then the mutable state
        is restored on top.
        """
        config = EngineConfig(
            method=MCOSMethod(payload["config"]["method"]),
            window_size=int(payload["config"]["window_size"]),
            duration=int(payload["config"]["duration"]),
            enable_pruning=bool(payload["config"]["enable_pruning"]),
            restrict_labels=bool(payload["config"]["restrict_labels"]),
        )
        queries = [CNFQuery.from_dict(entry) for entry in payload["queries"]]
        engine = cls(queries, config)
        engine.restore(payload)
        return engine

    def reset(self) -> None:
        """Reset the engine to process another relation from scratch.

        The interner survives the reset: released bit positions are recycled,
        so masks stay narrow no matter how many relations the engine serves.
        """
        self.interner.compact(0)
        self.generator = self._build_generator()
        self._labels = {}
        self._mcos_seconds = 0.0
        self._evaluation_seconds = 0.0
        self._frames_processed = 0
        self._result_states = 0
