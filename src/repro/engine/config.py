"""Engine configuration: which MCOS strategy, which optimisations."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Type

from repro.core.arraykernel import ssg_generator_class
from repro.core.base import MCOSGenerator
from repro.core.mfs import MarkedFrameSetGenerator
from repro.core.naive import NaiveGenerator
from repro.core.reference import ReferenceGenerator


class MCOSMethod(enum.Enum):
    """The state maintenance strategies evaluated in the paper."""

    NAIVE = "NAIVE"
    MFS = "MFS"
    SSG = "SSG"
    REFERENCE = "REFERENCE"

    @property
    def generator_class(self) -> Type[MCOSGenerator]:
        """The generator class implementing this method.

        SSG resolves through :func:`repro.core.arraykernel.ssg_generator_class`
        at every access, so the ``REPRO_KERNEL`` backend selection takes
        effect per generator construction (both backends are byte-identical;
        only the inner-loop machinery differs).
        """
        if self is MCOSMethod.SSG:
            return ssg_generator_class()
        return {
            MCOSMethod.NAIVE: NaiveGenerator,
            MCOSMethod.MFS: MarkedFrameSetGenerator,
            MCOSMethod.REFERENCE: ReferenceGenerator,
        }[self]


@dataclass
class EngineConfig:
    """Configuration of a :class:`~repro.engine.engine.TemporalVideoQueryEngine`.

    Attributes
    ----------
    method:
        MCOS state maintenance strategy.
    window_size / duration:
        Temporal parameters ``w`` and ``d`` shared by the registered queries.
        Queries with differing windows should be run in separate engine
        instances (the paper groups queries by window size for the same
        reason).
    enable_pruning:
        Apply the Proposition-1 result-driven pruning when every query uses
        only ``>=`` conditions (the ``*_O`` method variants of Figure 9).
    restrict_labels:
        Drop objects whose class no query refers to before state maintenance.
    """

    method: MCOSMethod = MCOSMethod.SSG
    window_size: int = 300
    duration: int = 240
    enable_pruning: bool = False
    restrict_labels: bool = True

    def __post_init__(self) -> None:
        if isinstance(self.method, str):
            self.method = MCOSMethod(self.method)
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if not 0 <= self.duration <= self.window_size:
            raise ValueError("duration must satisfy 0 <= d <= window_size")

    @property
    def method_label(self) -> str:
        """Label of the method including the pruning suffix used in Figure 9."""
        suffix = "_O" if self.enable_pruning else ""
        return f"{self.method.value}{suffix}"
