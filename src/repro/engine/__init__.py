"""End-to-end temporal video query engine.

Wires the three layers of the paper's architecture together: a video source
(simulated world + detection/tracking pipeline, or a pre-computed relation),
an MCOS generation strategy, and the CNF query evaluation module.
"""

from repro.engine.config import EngineConfig, MCOSMethod
from repro.engine.engine import EngineRunResult, TemporalVideoQueryEngine

__all__ = [
    "MCOSMethod",
    "EngineConfig",
    "TemporalVideoQueryEngine",
    "EngineRunResult",
]
