"""Query workload generators for the experimental evaluation."""

from repro.workloads.generator import (
    QueryWorkload,
    ge_only_workload,
    incident_workload,
    random_cnf_workload,
)
from repro.workloads.streams import (
    StreamEvent,
    interleave_feeds,
    multi_window_workload,
    simulated_feed,
    simulated_feeds,
)

__all__ = [
    "QueryWorkload",
    "random_cnf_workload",
    "ge_only_workload",
    "incident_workload",
    "StreamEvent",
    "simulated_feed",
    "simulated_feeds",
    "interleave_feeds",
    "multi_window_workload",
]
