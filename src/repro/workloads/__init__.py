"""Query workload generators for the experimental evaluation."""

from repro.workloads.generator import (
    QueryWorkload,
    ge_only_workload,
    incident_workload,
    random_cnf_workload,
)

__all__ = [
    "QueryWorkload",
    "random_cnf_workload",
    "ge_only_workload",
    "incident_workload",
]
