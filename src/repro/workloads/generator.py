"""Random CNF query workload generators.

The experimental evaluation of the paper uses two kinds of query workloads:

* general CNF workloads of 10-50 queries over the classes detected in the
  datasets (person, car, truck, bus), used by Figure 8 and Figure 10;
* workloads of 100 queries containing only ``>=`` conditions, parameterised by
  the minimum threshold ``n_min`` appearing in any condition, used by
  Figure 9 to study the Proposition-1 pruning strategy.

All generators are deterministic given a seed, so experiments are repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.query.model import CNFQuery, Comparison, Condition, Disjunction

#: Classes the paper restricts detection to (Section 6.1).
DEFAULT_CLASSES: Tuple[str, ...] = ("person", "car", "truck", "bus")


@dataclass
class QueryWorkload:
    """A named collection of CNF queries sharing window/duration parameters."""

    name: str
    queries: List[CNFQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def labels(self) -> Set[str]:
        """Union of class labels referenced by the workload."""
        labels: Set[str] = set()
        for query in self.queries:
            labels |= query.labels()
        return labels

    def uses_only_ge(self) -> bool:
        """True when every condition of every query uses ``>=``."""
        return all(query.uses_only_ge() for query in self.queries)


def _random_condition(
    rng: random.Random,
    classes: Sequence[str],
    operators: Sequence[Comparison],
    min_threshold: int,
    max_threshold: int,
) -> Condition:
    label = rng.choice(list(classes))
    comparison = rng.choice(list(operators))
    threshold = rng.randint(min_threshold, max_threshold)
    return Condition(label, comparison, threshold)


def random_cnf_workload(
    num_queries: int,
    window: int = 300,
    duration: int = 240,
    classes: Sequence[str] = DEFAULT_CLASSES,
    max_disjunctions: int = 3,
    max_conditions: int = 3,
    min_threshold: int = 1,
    max_threshold: int = 5,
    seed: int = 0,
    name: str = "random-cnf",
) -> QueryWorkload:
    """Generate a workload of random CNF queries (Figures 8 and 10).

    Each query has 1..``max_disjunctions`` disjunctions of
    1..``max_conditions`` conditions with operators drawn from
    ``{<=, =, >=}`` and thresholds in ``[min_threshold, max_threshold]``.
    """
    rng = random.Random(seed)
    operators = (Comparison.LE, Comparison.EQ, Comparison.GE)
    queries: List[CNFQuery] = []
    for i in range(num_queries):
        disjunctions = []
        for _ in range(rng.randint(1, max_disjunctions)):
            conditions = tuple(
                _random_condition(rng, classes, operators, min_threshold, max_threshold)
                for _ in range(rng.randint(1, max_conditions))
            )
            disjunctions.append(Disjunction(conditions))
        queries.append(
            CNFQuery(
                tuple(disjunctions),
                window=window,
                duration=duration,
                name=f"{name}-{i}",
            )
        )
    return QueryWorkload(name, queries)


def ge_only_workload(
    num_queries: int = 100,
    n_min: int = 1,
    window: int = 300,
    duration: int = 240,
    classes: Sequence[str] = DEFAULT_CLASSES,
    max_disjunctions: int = 2,
    max_conditions: int = 2,
    threshold_spread: int = 3,
    seed: int = 0,
    name: str = "ge-only",
) -> QueryWorkload:
    """Generate a workload of ``>=``-only queries with minimum threshold ``n_min``.

    This matches the Figure 9 setup: 100 queries containing only ``>=``
    conditions; ``n_min`` is the smallest threshold appearing in any condition
    of the workload.  Larger ``n_min`` values make queries more selective,
    which is precisely what the Proposition-1 pruning strategy exploits.
    """
    rng = random.Random(seed)
    queries: List[CNFQuery] = []
    for i in range(num_queries):
        disjunctions = []
        for _ in range(rng.randint(1, max_disjunctions)):
            conditions = tuple(
                Condition(
                    rng.choice(list(classes)),
                    Comparison.GE,
                    rng.randint(n_min, n_min + threshold_spread),
                )
                for _ in range(rng.randint(1, max_conditions))
            )
            disjunctions.append(Disjunction(conditions))
        queries.append(
            CNFQuery(
                tuple(disjunctions),
                window=window,
                duration=duration,
                name=f"{name}-nmin{n_min}-{i}",
            )
        )
    # Guarantee that n_min is actually attained by some condition.
    if queries:
        first = queries[0]
        forced = Disjunction(
            (Condition(rng.choice(list(classes)), Comparison.GE, n_min),)
        )
        queries[0] = CNFQuery(
            first.disjunctions + (forced,),
            window=window,
            duration=duration,
            name=first.name,
        )
    return QueryWorkload(f"{name}-nmin{n_min}", queries)


def incident_workload(
    window: int = 300,
    duration: int = 150,
    name: str = "incident",
) -> QueryWorkload:
    """The motivating surveillance workload from the introduction.

    "A white car and two humans appear jointly": one car and at least two
    persons co-occurring for the duration threshold, plus two variations used
    by the example applications.
    """
    queries = [
        CNFQuery.from_condition_lists(
            [[("car", ">=", 1)], [("person", ">=", 2)]],
            window=window,
            duration=duration,
            name="car-with-two-people",
        ),
        CNFQuery.from_condition_lists(
            [[("car", "=", 2)], [("person", "<=", 0)]],
            window=window,
            duration=duration,
            name="exactly-two-cars-no-people",
        ),
        CNFQuery.from_condition_lists(
            [[("truck", ">=", 3)], [("person", ">=", 1)]],
            window=window,
            duration=duration,
            name="three-trucks-and-a-person",
        ),
    ]
    return QueryWorkload(name, queries)
