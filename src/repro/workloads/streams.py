"""Multi-stream scenario generation for the streaming runtime.

Builds fleets of simulated camera feeds (independent
:class:`~repro.datamodel.relation.VideoRelation`\\ s with bursty, labelled
co-occurrence patterns), interleaves them into one ``(stream_id, frame)``
event sequence — optionally with bounded out-of-order jitter, the arrival
pattern a multi-camera ingest tier actually sees — and generates query
workloads spanning several window groups, which is what exercises the
:class:`~repro.streaming.router.StreamRouter`'s auto-grouping.

Everything is deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.datamodel.observation import FrameObservation
from repro.datamodel.relation import VideoRelation
from repro.query.model import CNFQuery
from repro.workloads.generator import DEFAULT_CLASSES, random_cnf_workload

#: One element of an interleaved multi-stream sequence.
StreamEvent = Tuple[str, FrameObservation]


def simulated_feed(
    stream_id: str,
    seed: int,
    num_frames: int = 300,
    universe: int = 12,
    classes: Sequence[str] = DEFAULT_CLASSES,
    min_cohort: int = 2,
    churn: float = 0.3,
) -> VideoRelation:
    """One simulated camera feed with bursty, labelled co-occurrences.

    A *cohort* of objects stays in view for a stretch of frames, then churns:
    some members leave, new ones arrive, and occasional noisy frames show
    unrelated subsets — the regime that creates long frame-span runs followed
    by fragmentation, which is what stresses the MCOS layer.  Object ids are
    feed-local; each id keeps one class label for its lifetime.
    """
    # String seeds hash deterministically across processes (unlike tuples,
    # whose hash is salted by PYTHONHASHSEED).
    rng = random.Random(f"{seed}/{stream_id}")
    weights = [1.0] * len(classes)
    label_of: Dict[int, str] = {}

    def label(oid: int) -> str:
        existing = label_of.get(oid)
        if existing is None:
            existing = rng.choices(list(classes), weights=weights)[0]
            label_of[oid] = existing
        return existing

    frames: List[Dict[int, str]] = []
    cohort = set(rng.sample(range(universe), rng.randint(min_cohort, max(min_cohort, universe // 2))))
    while len(frames) < num_frames:
        burst = rng.randint(3, 14)
        for _ in range(min(burst, num_frames - len(frames))):
            frames.append({oid: label(oid) for oid in cohort})
        for _ in range(rng.randint(0, 2)):
            if len(frames) >= num_frames:
                break
            noise = rng.sample(range(universe), rng.randint(0, universe))
            frames.append({oid: label(oid) for oid in noise})
        for oid in list(cohort):
            if rng.random() < churn:
                cohort.discard(oid)
        while len(cohort) < min_cohort:
            cohort.add(rng.randrange(universe))
    return VideoRelation(
        [FrameObservation(fid, labels) for fid, labels in enumerate(frames)],
        name=stream_id,
    )


def simulated_feeds(
    num_feeds: int,
    seed: int = 0,
    num_frames: int = 300,
    universe: int = 12,
    classes: Sequence[str] = DEFAULT_CLASSES,
) -> Dict[str, VideoRelation]:
    """A fleet of independent camera feeds, keyed by stream id."""
    return {
        f"cam-{index:02d}": simulated_feed(
            f"cam-{index:02d}",
            seed=seed * 1000 + index,
            num_frames=num_frames,
            universe=universe,
            classes=classes,
        )
        for index in range(num_feeds)
    }


def interleave_feeds(
    feeds: Dict[str, VideoRelation],
    jitter: int = 0,
    seed: int = 0,
) -> Iterator[StreamEvent]:
    """Merge feeds into one event sequence, round-robin across streams.

    ``jitter > 0`` shuffles events within non-overlapping windows of
    ``jitter`` consecutive *rounds* (a round emits one frame of every stream
    still live).  A window therefore holds at most ``jitter`` consecutive
    frames of any one stream, so the shuffle displaces a stream's frames by
    strictly less than ``jitter`` frame ids — genuine per-stream
    out-of-order arrival, and exactly what a shard with
    ``watermark >= jitter`` must absorb without dropping anything.  Grouping
    by round (not by a fixed event count) keeps that bound when feeds have
    unequal lengths: once short feeds exhaust, rounds shrink but still
    contribute one frame per surviving stream.
    """
    iterators = {stream_id: relation.frames() for stream_id, relation in feeds.items()}
    merged: List[StreamEvent] = []
    round_starts: List[int] = []
    while iterators:
        round_starts.append(len(merged))
        exhausted = []
        for stream_id, frames in iterators.items():
            frame = next(frames, None)
            if frame is None:
                exhausted.append(stream_id)
            else:
                merged.append((stream_id, frame))
        for stream_id in exhausted:
            del iterators[stream_id]
    if jitter > 0:
        rng = random.Random(seed)
        for chunk in range(0, len(round_starts), jitter):
            start = round_starts[chunk]
            end = (
                round_starts[chunk + jitter]
                if chunk + jitter < len(round_starts) else len(merged)
            )
            block = merged[start:end]
            rng.shuffle(block)
            merged[start:end] = block
    return iter(merged)


def bench_scenario(
    num_feeds: int,
    frames_per_feed: int,
    groups: Sequence[Tuple[int, int]],
    queries_per_group: int,
    seed: int,
) -> Tuple[Dict[str, VideoRelation], List[CNFQuery]]:
    """One deterministic multi-stream scenario: feeds plus id-assigned queries.

    Shared by the streaming and pool benchmarks and the pool differential
    test suite, so they all exercise literally the same workload.  Query ids
    are assigned globally up front; matches from any serving architecture
    (dedicated engines, router, worker pool) then carry the same
    ``query_id`` and can be compared verbatim.
    """
    feeds = simulated_feeds(num_feeds, seed=seed, num_frames=frames_per_feed)
    queries = [
        query.with_id(index)
        for index, query in enumerate(
            multi_window_workload(
                list(groups), queries_per_group=queries_per_group, seed=seed
            )
        )
    ]
    return feeds, queries


def skewed_scenario(
    num_feeds: int,
    frames_per_feed: int,
    groups: Sequence[Tuple[int, int]],
    queries_per_group: int,
    seed: int,
    hot_factor: int = 4,
) -> Tuple[Dict[str, VideoRelation], List[CNFQuery], str]:
    """A hot-stream scenario: feed 0 runs ``hot_factor``× its siblings' rate.

    Returns ``(feeds, queries, hot_stream_id)``.  The hot feed carries
    ``hot_factor * frames_per_feed`` frames; every sibling carries
    ``frames_per_feed``.  Interleaved with :func:`interleave_skewed`, the
    hot feed emits ``hot_factor`` frames per round against the siblings'
    one — the one-camera-covers-the-freeway regime that round-robin
    stream→worker placement handles worst.
    """
    if num_feeds < 2:
        raise ValueError("a skewed scenario needs at least two feeds")
    if hot_factor < 2:
        raise ValueError(f"hot_factor must be >= 2, got {hot_factor}")
    feeds = {
        f"cam-{index:02d}": simulated_feed(
            f"cam-{index:02d}",
            seed=seed * 1000 + index,
            num_frames=(
                frames_per_feed * hot_factor if index == 0 else frames_per_feed
            ),
        )
        for index in range(num_feeds)
    }
    queries = [
        query.with_id(index)
        for index, query in enumerate(
            multi_window_workload(
                list(groups), queries_per_group=queries_per_group, seed=seed
            )
        )
    ]
    return feeds, queries, "cam-00"


def interleave_skewed(
    feeds: Dict[str, VideoRelation],
    hot_stream: str,
    hot_factor: int,
    stagger: int = 1,
) -> List[StreamEvent]:
    """Rate-skewed interleave: the hot stream emits ``hot_factor`` frames
    per round, siblings one; sibling ``k`` joins at round ``k * stagger``.

    The staggered starts make first-seen order meaningful for placement:
    by the time a sibling first appears, the hot stream has already built
    up observable load, so a load-aware policy can steer the newcomer away
    from the hot worker while round-robin blindly stacks every second
    sibling next to it.  Deterministic (no randomness).
    """
    iterators = {
        stream_id: relation.frames()
        for stream_id, relation in feeds.items()
    }
    start_round = {
        stream_id: (index + 1) * stagger
        for index, stream_id in enumerate(
            sid for sid in feeds if sid != hot_stream
        )
    }
    start_round[hot_stream] = 0
    merged: List[StreamEvent] = []
    round_index = 0
    while iterators:
        exhausted = []
        for stream_id in list(iterators):
            if round_index < start_round[stream_id]:
                continue
            take = hot_factor if stream_id == hot_stream else 1
            for _ in range(take):
                frame = next(iterators[stream_id], None)
                if frame is None:
                    exhausted.append(stream_id)
                    break
                merged.append((stream_id, frame))
        for stream_id in exhausted:
            del iterators[stream_id]
        round_index += 1
    return merged


def drifting_hotspot_scenario(
    num_feeds: int,
    frames_per_feed: int,
    groups: Sequence[Tuple[int, int]],
    queries_per_group: int,
    seed: int,
    hot_factor: int = 4,
    phases: int = 2,
) -> Tuple[Dict[str, VideoRelation], List[CNFQuery], List[str]]:
    """A *drifting* hot-stream scenario: the hotspot moves between feeds.

    Returns ``(feeds, queries, hot_streams)`` where ``hot_streams[p]`` is
    the feed that runs ``hot_factor``× its siblings' rate during phase
    ``p`` (phases are consecutive feed indices: ``cam-00`` is hot first,
    then ``cam-01``, ...).  Every feed carries enough frames to serve both
    its hot and cold phases.  Interleaved with
    :func:`interleave_drifting`, the load imbalance a placement decision
    was correct for in phase 0 becomes wrong in phase 1 — the regime that
    static (even load-aware-at-arrival) placement cannot fix and an
    autonomous rebalance trigger exists for.
    """
    if num_feeds < 2:
        raise ValueError("a drifting-hotspot scenario needs at least two feeds")
    if hot_factor < 2:
        raise ValueError(f"hot_factor must be >= 2, got {hot_factor}")
    if not 1 <= phases <= num_feeds:
        raise ValueError(
            f"phases must be between 1 and num_feeds ({num_feeds}), "
            f"got {phases}"
        )
    hot_streams = [f"cam-{index:02d}" for index in range(phases)]
    # A feed that is hot for one of the `phases` phases emits
    # hot_factor * frames_per_feed frames in that phase plus
    # frames_per_feed in each of the others.
    frames_of = {
        f"cam-{index:02d}": (
            frames_per_feed * (hot_factor + phases - 1)
            if index < phases else frames_per_feed * phases
        )
        for index in range(num_feeds)
    }
    feeds = {
        stream_id: simulated_feed(
            stream_id,
            seed=seed * 1000 + index,
            num_frames=frames_of[stream_id],
        )
        for index, stream_id in enumerate(
            f"cam-{index:02d}" for index in range(num_feeds)
        )
    }
    queries = [
        query.with_id(index)
        for index, query in enumerate(
            multi_window_workload(
                list(groups), queries_per_group=queries_per_group, seed=seed
            )
        )
    ]
    return feeds, queries, hot_streams


def interleave_drifting(
    feeds: Dict[str, VideoRelation],
    hot_streams: Sequence[str],
    hot_factor: int,
) -> List[StreamEvent]:
    """Phase-sliced interleave: each phase re-runs the skewed cadence with
    that phase's hot stream emitting ``hot_factor`` frames per round.

    Each phase runs for ``min_feed_frames // len(hot_streams)`` rounds —
    for feeds sized by :func:`drifting_hotspot_scenario` that consumes
    every feed exactly within the phased section (cold feeds emit one
    frame per round over all phases; a hot feed emits its surplus in its
    own phase).  Deterministic (no randomness); every frame of every feed
    is emitted exactly once, any tail flushed round-robin after the last
    phase.
    """
    if not hot_streams:
        raise ValueError("at least one hot stream is required")
    for hot_stream in hot_streams:
        if hot_stream not in feeds:
            raise ValueError(f"unknown hot stream {hot_stream!r}")
    iterators = {
        stream_id: relation.frames()
        for stream_id, relation in feeds.items()
    }
    # Rounds per phase: the shortest (always-cold) feed emits one frame
    # per round across all phases, so it lasts exactly min_frames rounds.
    min_frames = min(len(relation) for relation in feeds.values())
    rounds_per_phase = max(1, min_frames // len(hot_streams))
    merged: List[StreamEvent] = []
    exhausted: List[str] = []

    def emit(stream_id: str, take: int) -> None:
        for _ in range(take):
            frame = next(iterators[stream_id], None)
            if frame is None:
                exhausted.append(stream_id)
                break
            merged.append((stream_id, frame))

    for hot_stream in hot_streams:
        for _ in range(rounds_per_phase):
            for stream_id in list(iterators):
                emit(
                    stream_id,
                    hot_factor if stream_id == hot_stream else 1,
                )
            for stream_id in exhausted:
                iterators.pop(stream_id, None)
            exhausted.clear()
    # Flush every remaining tail round-robin so the event sequence covers
    # the feeds exactly.
    while iterators:
        for stream_id in list(iterators):
            emit(stream_id, 1)
        for stream_id in exhausted:
            iterators.pop(stream_id, None)
        exhausted.clear()
    return merged


def multi_window_workload(
    groups: Sequence[Tuple[int, int]],
    queries_per_group: int = 4,
    classes: Sequence[str] = DEFAULT_CLASSES,
    max_threshold: int = 4,
    seed: int = 0,
    name: str = "multi-window",
) -> List[CNFQuery]:
    """Random CNF queries spread over several ``(window, duration)`` groups.

    The returned list interleaves groups (query ``i`` belongs to group
    ``i % len(groups)``), mimicking registration order in a real deployment
    where queries arrive without regard for their temporal parameters.
    """
    if not groups:
        raise ValueError("at least one (window, duration) group is required")
    per_group = {
        (window, duration): iter(
            random_cnf_workload(
                queries_per_group,
                window=window,
                duration=duration,
                classes=classes,
                max_threshold=max_threshold,
                seed=seed * 100 + index,
                name=f"{name}-w{window}d{duration}",
            ).queries
        )
        for index, (window, duration) in enumerate(groups)
    }
    queries: List[CNFQuery] = []
    for i in range(queries_per_group * len(groups)):
        window, duration = groups[i % len(groups)]
        queries.append(next(per_group[(window, duration)]))
    return queries
