"""Array-backed SSG fast path.

:class:`ArraySSGGenerator` reruns the Strict State Graph maintenance of
:class:`~repro.core.ssg.StrictStateGraphGenerator` with the per-visit
classification work lifted off big-int arithmetic and onto flat,
slot-indexed arrays: every live graph state owns a row (``state.slot``) in a
numpy ``uint64`` bitset matrix of object masks plus an index column pointing
at the state's memoised merge target.

The traversal itself must stay the *exact* walk of the pure-Python path:
checkpoint bytes include the work counters and the graph's dict insertion
orders, so any reordering of visits or graph edits is observable.  The
kernel therefore keeps the oracle's DFS and span maintenance verbatim and
accelerates the two pieces that dominate repeated frames:

* **Vectorised visit classification.**  A visit's class — empty
  intersection, subset of the arriving frame, or partial overlap — depends
  only on the state's (immutable) object mask and the frame mask, so one
  ``M & F`` over the mask matrix classifies every live slot before the walk
  starts.  The walk then reads a per-slot code instead of computing a
  big-int ``&`` per visit.  Codes are computed once per frame and can only
  go stale in the memo-hit lane (below), which is re-validated scalar-side;
  slots allocated or invalidated mid-frame are poked back to the "no
  shortcut" code.
* **Memoised-hit visits.**  A partial visit whose intersection matches the
  state's previous derivation (``cached_inter``/``cached_tgt``) repeats a
  merge that is provably a no-op — the source's live content is contained
  in the target — into a target whose edge is already memoised.  The visit
  collapses to the candidate bookkeeping the oracle would perform, skipping
  the merge-memo probe, the merge dispatch, the tail append (the target's
  own subset visit this frame performs it) and the edge-memo check.  The
  cache is dropped whenever the source gains content its target does not
  share: a marked principal append or an incoming merge.

Everything else — trims, deaths, appends, merges, graph edits, reporting,
checkpointing — is the inherited oracle code operating on real spans, which
is what keeps the two backends byte-identical by construction.

Backend selection
-----------------
``select_kernel()`` picks the backend at generator construction:

* ``REPRO_KERNEL=python`` (or ``oracle``) forces the pure-Python
  :class:`StrictStateGraphGenerator` — the differential oracle;
* ``REPRO_KERNEL=array`` (or ``numpy``) forces the array kernel and raises
  if numpy is missing;
* unset or ``REPRO_KERNEL=auto``: the array kernel when numpy imports,
  the pure-Python path otherwise.

Both classes expose ``name = "SSG"`` and produce byte-identical results,
reports and checkpoints, so everything above ``core/`` is agnostic to the
choice and checkpoints migrate freely between the two.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Type

from repro.core.result import ResultStateSet
from repro.core.ssg import ObjectBits, StrictStateGraphGenerator
from repro.core.state import State
from repro.datamodel.observation import FrameObservation

try:  # pragma: no cover - exercised via the REPRO_KERNEL=python CI leg
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

#: Environment variable selecting the kernel backend.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Environment variable tuning the vectorised-classification threshold.
THRESHOLD_ENV_VAR = "REPRO_ARRAY_THRESHOLD"

#: Environment variable tuning the minimum mask width (in 64-bit words) for
#: vectorised classification.
MIN_WORDS_ENV_VAR = "REPRO_ARRAY_MIN_WORDS"

#: Live-state count above which classification switches to the mask matrix.
#: Below it the per-frame numpy call overhead exceeds the big-int arithmetic
#: it replaces.
DEFAULT_NP_THRESHOLD = 192

#: Minimum object-population width (64-bit words) for the mask matrix.
#: CPython big-int ``&``/compares on one- or two-word ints run in tens of
#: nanoseconds — under that the per-visit scalar work is already cheaper
#: than a numpy round trip, measured on the paper's (narrow) datasets.
DEFAULT_MIN_WORDS = 4


def numpy_available() -> bool:
    """True when numpy imported successfully in this process."""
    return _np is not None


def select_kernel() -> str:
    """Resolve the kernel backend name: ``"array"`` or ``"python"``.

    Honours ``REPRO_KERNEL`` (``auto``/``array``/``numpy``/``python``/
    ``oracle``; unset means ``auto``) and falls back to the pure-Python
    oracle automatically when numpy is unavailable.
    """
    value = os.environ.get(KERNEL_ENV_VAR, "auto").strip().lower() or "auto"
    if value in ("python", "oracle"):
        return "python"
    if value == "auto":
        return "array" if _np is not None else "python"
    if value in ("array", "numpy"):
        if _np is None:
            raise RuntimeError(
                f"{KERNEL_ENV_VAR}={value} requests the array kernel but "
                "numpy is not importable; unset it or use "
                f"{KERNEL_ENV_VAR}=python"
            )
        return "array"
    raise ValueError(
        f"unrecognised {KERNEL_ENV_VAR}={value!r} "
        "(expected auto, array, numpy, python or oracle)"
    )


def ssg_generator_class() -> Type[StrictStateGraphGenerator]:
    """The SSG generator class for the currently selected backend."""
    if select_kernel() == "array":
        return ArraySSGGenerator
    return StrictStateGraphGenerator


class ArraySSGGenerator(StrictStateGraphGenerator):
    """SSG maintenance with flat-array visit classification.

    Subclasses the pure-Python generator and overrides only the per-frame
    traversal machinery (`_process`, `_traverse_and_integrate`,
    `_traverse`) plus the node lifecycle hooks that keep the slot columns
    in step; span maintenance, graph maintenance, reporting and
    checkpointing are inherited so both paths evolve identical state.
    """

    def __init__(self, window_size: int, duration: int, **kwargs):
        super().__init__(window_size, duration, **kwargs)
        #: Per-slot visit-class codes for the current frame, or None while
        #: the population is below the vectorisation threshold.  Mutable:
        #: slots touched mid-frame are poked back to 0 ("no shortcut").
        self._frame_codes: Optional[bytearray] = None
        self._free_slots: List[int] = []
        self._slot_hi = 0
        try:
            self._np_threshold = max(  # repro-lint: disable=CKPT-DRIFT -- env-derived tuning knob, re-read on construction; not checkpoint state
                1, int(os.environ.get(THRESHOLD_ENV_VAR, DEFAULT_NP_THRESHOLD))
            )
        except ValueError:
            self._np_threshold = DEFAULT_NP_THRESHOLD
        try:
            self._np_min_words = max(  # repro-lint: disable=CKPT-DRIFT -- env-derived tuning knob, re-read on construction; not checkpoint state
                1, int(os.environ.get(MIN_WORDS_ENV_VAR, DEFAULT_MIN_WORDS))
            )
        except ValueError:
            self._np_min_words = DEFAULT_MIN_WORDS
        # Mask matrix / cached-target index column, allocated lazily the
        # first time the population crosses the threshold.
        self._masks = None
        self._ci_slot = None
        self._mask_words = 1
        #: Diagnostic: visits served by a flat-array shortcut (not part of
        #: GeneratorStats — checkpoint stats must match the oracle's).
        self.trivial_visits = 0  # repro-lint: disable=CKPT-DRIFT -- process-local diagnostic counter, deliberately outside checkpoint bytes

    # ------------------------------------------------------------------
    # Flat-column lifecycle
    # ------------------------------------------------------------------
    def _alloc_slot(self) -> int:
        free = self._free_slots
        if free:
            slot = free.pop()
        else:
            slot = self._slot_hi
            self._slot_hi = slot + 1
            if self._masks is not None and slot >= self._masks.shape[0]:
                self._grow_rows(slot + 1)
        codes = self._frame_codes
        if codes is not None:
            # A state allocated mid-frame has no precomputed class; force
            # the scalar path for it until the next frame's classification.
            if slot < len(codes):
                codes[slot] = 0
            else:
                codes.extend(b"\x00" * (slot + 1 - len(codes)))
        return slot

    def _grow_rows(self, need: int) -> None:
        np = _np
        rows = max(need, 2 * self._masks.shape[0])
        masks = np.zeros((rows, self._mask_words), dtype="<u8")
        masks[: self._masks.shape[0]] = self._masks
        cis = np.full(rows, -1, dtype=np.int64)
        cis[: self._ci_slot.shape[0]] = self._ci_slot
        self._masks, self._ci_slot = masks, cis

    def _ensure_width(self, bits: int) -> None:
        words = (bits.bit_length() + 63) // 64
        if words <= self._mask_words:
            return
        if self._masks is not None:
            self._masks = _np.pad(
                self._masks, ((0, 0), (0, words - self._mask_words))
            )
        self._mask_words = words

    def _row_words(self, bits: int):
        return _np.frombuffer(
            bits.to_bytes(self._mask_words * 8, "little"), dtype="<u8"
        )

    def _write_mask_row(self, state: State) -> None:
        if self._masks is not None:
            self._ensure_width(state.bits)
            self._masks[state.slot] = self._row_words(state.bits)
            self._ci_slot[state.slot] = -1

    def _register_node(self, state: State) -> None:
        # Mirrors the base implementation (no super() call: this runs on
        # every _add_edge, where the already-registered no-op dominates).
        if state.children is None:
            state.children = {}
            state.parents = {}
            self._root_keys[state.bits] = state
            if state.slot < 0:
                state.slot = self._alloc_slot()
                state.cached_inter = -1
                state.cached_tgt = None
                self._write_mask_row(state)

    def _remove_node(self, state: State) -> None:
        super()._remove_node(state)
        state.cached_inter = -1
        state.cached_tgt = None
        slot = state.slot
        if slot >= 0:
            # slot == -1 doubles as the liveness flag sources consult before
            # trusting this state as their cached merge target.
            state.slot = -1
            self._free_slots.append(slot)
            cis = self._ci_slot
            if cis is not None:
                cis[slot] = -1

    def _drop_cache(self, state: State) -> None:
        """Invalidate a state's outgoing derivation cache.

        Called when the state gains content its cached target does not
        share (a marked principal append or an incoming merge).  Pokes the
        frame codes so a stale memo-hit code cannot be consumed later in
        the same frame.
        """
        if state.cached_tgt is not None:
            state.cached_tgt = None
            state.cached_inter = -1
            codes = self._frame_codes
            if codes is not None:
                codes[state.slot] = 0
            cis = self._ci_slot
            if cis is not None:
                cis[state.slot] = -1

    # ------------------------------------------------------------------
    # Vectorised classification
    # ------------------------------------------------------------------
    def _build_matrices(self) -> None:
        np = _np
        rows = max(16, self._slot_hi)
        self._masks = np.zeros((rows, self._mask_words), dtype="<u8")
        self._ci_slot = np.full(rows, -1, dtype=np.int64)
        for state in self._states:
            slot = state.slot
            if slot < 0:
                continue
            self._ensure_width(state.bits)
            self._masks[slot] = self._row_words(state.bits)
            tgt = state.cached_tgt
            if tgt is not None and tgt.slot >= 0:
                self._ci_slot[slot] = tgt.slot

    def _classify(self, frame_bits: int) -> Optional[bytearray]:
        """Per-slot visit-class codes for this frame.

        Codes: 0 = no shortcut (scalar classification), 1 = memoised-partial
        hit, 2 = subset, 3 = empty intersection.  The empty/subset/partial
        split depends only on the immutable object masks, so those codes
        stay valid all frame.  The hit lane exploits
        ``cached_inter == cached_tgt.bits`` (a cache is only established
        against the state keyed by the intersection): row ``s`` is a hit iff
        its cached-target index is valid and ``(masks & frame)[s]`` equals
        the target's mask row.  A stale index — dead target, recycled
        target slot — can only produce a false hit or a false miss; the hit
        consumer re-validates the cached target's liveness and a miss just
        skips the shortcut.
        """
        if _np is None or len(self._states) < self._np_threshold:
            return None
        if (frame_bits.bit_length() + 63) // 64 < self._np_min_words \
                and self._mask_words < self._np_min_words:
            return None
        if self._masks is None:
            self._build_matrices()
        self._ensure_width(frame_bits)
        hi = self._slot_hi
        if hi == 0:
            return None
        np = _np
        f = self._row_words(frame_bits)
        masks = self._masks[:hi]
        inter = masks & f
        cis = self._ci_slot[:hi]
        hit = (cis >= 0) & (inter == self._masks[cis]).all(axis=1)
        sub = (inter == masks).all(axis=1)
        emp = ~inter.any(axis=1)
        codes = np.where(hit, 1, np.where(sub, 2, np.where(emp, 3, 0)))
        return bytearray(codes.astype(np.uint8).tobytes())

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _process(self, frame: FrameObservation, frame_bits: int) -> ResultStateSet:
        frame_id = frame.frame_id
        oldest_valid = self._oldest_valid_frame(frame_id)
        self._expire_principals(oldest_valid)

        result_candidates: Dict[ObjectBits, State] = {}
        if frame_bits:
            self._frame_codes = self._classify(frame_bits)
            self._traverse_and_integrate(
                frame_id, frame_bits, oldest_valid, result_candidates
            )
            self._frame_codes = None

        self._track_live_states(len(self._states))
        if len(self._edge_memo) > 64 * len(self._states) + 1024:
            self._prune_edge_memo()
        return self._report(frame_id, oldest_valid, result_candidates)

    def _traverse_and_integrate(
        self, frame_id: int, frame_bits: int, oldest_valid: int,
        result_candidates: Dict[ObjectBits, State],
    ) -> None:
        principal, created = self._states.get_or_create(frame_bits)
        if created:
            self.stats.states_created += 1
            if not self._keep_new_state(frame_bits):
                principal.terminated = True
                principal.add_frame(frame_id, marked=True)
                return
            self._register_node(principal)
        elif principal.terminated:
            return
        else:
            principal.expire_before(oldest_valid)
        principal.span.append(frame_id, marked=True)
        # The marked append is content the principal's cached merge target
        # has not seen: the memoised derivation is no longer a no-op.
        self._drop_cache(principal)
        self.stats.frames_appended += 1
        self._principals.setdefault(frame_bits, []).append(frame_id)

        candidates: Dict[ObjectBits, None] = {}
        stack: List[State] = []
        for root in self._roots():
            root_key = root.bits
            if root_key == frame_bits:
                continue
            root_inter = root_key & frame_bits
            if root_inter and root_inter != frame_bits:
                candidates.setdefault(root_inter, None)
            if root.flag != frame_id:
                root.flag = frame_id
                stack.append(root)
        if stack:
            self._traverse(stack, frame_bits, frame_id, oldest_valid,
                           result_candidates)

        self._connect_new_principal(principal, candidates)
        span = principal.span
        if span.frame_count >= self.config.duration:
            result_candidates[frame_bits] = principal

    def _traverse(
        self,
        stack: List[State],
        frame_bits: int,
        frame_id: int,
        oldest_valid: int,
        result_candidates: Dict[ObjectBits, State],
    ) -> None:
        """The oracle's DFS with precomputed visit classification.

        Visit order, span contents, graph edits, state creations/removals,
        candidate insertion order and every work counter match the
        pure-Python walk exactly; the codes only replace per-visit big-int
        classification, and the memo-hit lane skips work the oracle's own
        memos prove redundant.
        """
        states = self._states
        by_bits = states._by_bits
        interner = self.interner
        stats = self.stats
        edge_memo = self._edge_memo
        add_edge_memo = edge_memo.add
        duration = self.config.duration
        codes = self._frame_codes
        removed = 0
        survived = 0
        appended = 0
        trivial = 0
        pop = stack.pop
        push = stack.append
        while stack:
            state = pop()
            key = state.bits

            span = state.span
            # The oracle's inlined window slide: trim the first run in place
            # when no marks expire, fall back to the general expiry.
            sp_head = span._head
            sp_starts = span._starts
            first = sp_starts[sp_head]
            if first < oldest_valid:
                marked = span._marked
                mhead = span._mhead
                if (span._ends[sp_head] >= oldest_valid
                        and (mhead >= len(marked)
                             or marked[mhead] >= oldest_valid)):
                    span.frame_count -= oldest_valid - first
                    sp_starts[sp_head] = oldest_valid
                    span.revision += 1
                else:
                    span.expire_before(oldest_valid)
            if span.marked_count == 0:
                removed += 1
                children = state.children
                child_snapshot = list(children.values()) if children else None
                states.remove(state)
                self._remove_node(state)
                if child_snapshot:
                    for child in child_snapshot:
                        if child.flag != frame_id:
                            child.flag = frame_id
                            push(child)
                continue
            survived += 1

            # ---- visit classification --------------------------------
            if codes is not None:
                code = codes[state.slot]
                if code:
                    inter = -1
                else:
                    # Poked slot (allocated or invalidated mid-frame) or a
                    # genuine partial overlap: classify scalar-side.
                    inter = key & frame_bits
                    if not inter:
                        code = 3
                    elif inter == key:
                        code = 2
                    elif inter == state.cached_inter:
                        code = 1
                    else:
                        code = 0
            else:
                inter = key & frame_bits
                if not inter:
                    code = 3
                elif inter == key:
                    code = 2
                elif inter == state.cached_inter:
                    code = 1
                else:
                    code = 0

            if code == 3:
                # Empty intersection: prune the whole subtree.
                if span.frame_count >= duration:
                    result_candidates[key] = state
                continue

            if code == 2:
                # Subset: append only (inlined FrameSpan.append fast paths).
                sp_ends = span._ends
                last = sp_ends[-1]
                if last == frame_id - 1:
                    sp_ends[-1] = frame_id
                    span.frame_count += 1
                    span.revision += 1
                elif last != frame_id:
                    span.append(frame_id)
                appended += 1
            else:
                if code == 1:
                    # Memoised hit: the derivation repeats with unchanged
                    # content.  Valid only while the cached target is alive
                    # and keeps a mark through this frame's slide — a dying
                    # target must take the general path so its (stale-mark)
                    # candidate insertion happens exactly where the oracle
                    # performs it.
                    tgt = state.cached_tgt
                    if tgt.slot >= 0 and tgt.span._marked[-1] >= oldest_valid:
                        # The merge is a no-op (source content is contained
                        # in the target), the edge is memoised for the
                        # lifetime of the pair, and the arriving frame
                        # reaches the target through its own subset visit;
                        # only the oracle's candidate bookkeeping remains.
                        tspan = tgt.span
                        fc = tspan.frame_count
                        if tspan._ends[-1] != frame_id:
                            fc += 1
                        if fc >= duration and tspan.marked_count:
                            result_candidates[state.cached_inter] = tgt
                        appended += 1
                        trivial += 1
                        if span.frame_count >= duration:
                            result_candidates[key] = state
                        children = state.children
                        if children:
                            for child in children.values():
                                if child.flag != frame_id:
                                    child.flag = frame_id
                                    push(child)
                        continue
                    # Dead or dying target: clear the cache (also releases
                    # the reference keeping a removed state alive) and take
                    # the general path.
                    state.cached_inter = -1
                    state.cached_tgt = None
                    cis = self._ci_slot
                    if cis is not None:
                        cis[state.slot] = -1
                    code = 0
                if inter < 0:
                    inter = key & frame_bits
                target = by_bits.get(inter)
                if target is None:
                    target = State(inter, interner)
                    by_bits[inter] = target
                    stats.states_created += 1
                    if not self._keep_new_state(inter):
                        target.terminated = True
                        target.add_frame(frame_id, marked=True)
                        target = None  # type: ignore[assignment]
                elif target.terminated:
                    target = None  # type: ignore[assignment]
                if target is not None:
                    if target.children is None:
                        self._register_node(target)
                    tspan = target.span
                    memo = tspan._merge_memo
                    entry = memo.get(span.serial) if memo is not None else None
                    if entry is not None and entry[0] == span.revision \
                            and entry[3] == span.marks_revision:
                        # Source unchanged: provable no-op.  The derivation is
                        # stable — memoise it so the next repeat takes the
                        # hit lane.  (Sound on this and the catch-up branch:
                        # both certify the target holds the source's content.)
                        state.cached_inter = inter
                        state.cached_tgt = target
                        cis = self._ci_slot
                        if cis is not None:
                            cis[state.slot] = target.slot
                    elif (entry is not None
                            and entry[1] == span.mid_revision
                            and entry[3] == span.marks_revision
                            and span._ends[-1] <= tspan._ends[-1]
                            and tspan._starts[-1] <= entry[2] + 1):
                        entry[0] = span.revision
                        entry[2] = span._ends[-1]
                        state.cached_inter = inter
                        state.cached_tgt = target
                        cis = self._ci_slot
                        if cis is not None:
                            cis[state.slot] = target.slot
                    else:
                        # The merge may splice in content the target's own
                        # cached derivation has not seen.  (The no-op and
                        # catch-up branches above add nothing beyond the tail
                        # frame, which the target's cached target receives
                        # through its own subset visit — no drop needed.)
                        self._drop_cache(target)
                        tspan.merge(span, True, entry)
                    t_ends = tspan._ends
                    last = t_ends[-1]
                    if last == frame_id - 1:
                        t_ends[-1] = frame_id
                        tspan.frame_count += 1
                        tspan.revision += 1
                    elif last != frame_id:
                        tspan.append(frame_id)
                    appended += 1
                    ekey = (span.serial, tspan.serial)
                    if ekey not in edge_memo:
                        self._add_edge(state, target)
                        add_edge_memo(ekey)
                    if tspan.frame_count >= duration and tspan.marked_count:
                        result_candidates[inter] = target

            if span.frame_count >= duration:
                result_candidates[key] = state

            children = state.children
            if children:
                for child in children.values():
                    if child.flag != frame_id:
                        child.flag = frame_id
                        push(child)
        stats.state_visits += survived + removed
        stats.states_removed += removed
        stats.intersections += survived
        stats.frames_appended += appended
        self.trivial_visits += trivial

    # ------------------------------------------------------------------
    # Bookkeeping / checkpointing
    # ------------------------------------------------------------------
    def _reset_impl(self) -> None:
        super()._reset_impl()
        self.trivial_visits = 0
        self._frame_codes = None
        self._free_slots = []
        self._slot_hi = 0
        self._masks = None
        self._ci_slot = None
        self._mask_words = 1

    def _import_impl(self, payload: Dict) -> None:
        self._free_slots = []
        self._slot_hi = 0
        self._masks = None
        self._ci_slot = None
        self._mask_words = 1
        super()._import_impl(payload)
        for state in self._states:
            if not state.terminated and state.children is not None \
                    and state.slot < 0:
                state.slot = self._alloc_slot()
                state.cached_inter = -1
                state.cached_tgt = None
