"""State primitives shared by all MCOS generators.

A *state* (Definition 3 in the paper) couples a co-occurrence object set with
the set of window frames in which the objects appear jointly.  The MFS and SSG
approaches additionally *mark* certain frames (the Marked Frame Set,
Section 4.2.3); the presence of at least one marked, non-expired frame
certifies that the state's object set is a Maximum Co-occurrence Object Set of
its frame set (Theorems 1 and 4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple


class State:
    """A co-occurrence object set together with its (marked) frame set.

    The frame set is stored as an insertion-ordered mapping from frame id to a
    boolean *marked* flag.  Frames are always appended in increasing order and
    expire from the front, so both operations are amortised constant time.
    """

    __slots__ = (
        "object_ids",
        "_frames",
        "_marked_count",
        "_max_frame",
        "flag",
        "terminated",
    )

    def __init__(self, object_ids: FrozenSet[int]):
        if not object_ids:
            raise ValueError("a state must have a non-empty object set")
        self.object_ids: FrozenSet[int] = frozenset(object_ids)
        self._frames: Dict[int, bool] = {}
        self._marked_count = 0
        self._max_frame = -1
        #: Visitation flag used by the SSG traversal (set to the current frame
        #: id so each state is visited at most once per frame).
        self.flag: int = -1
        #: Set by the Proposition-1 pruning strategy (Section 5.3) when the
        #: state's MCOS fails every registered >=-only query.
        self.terminated: bool = False

    # ------------------------------------------------------------------
    # Frame-set maintenance
    # ------------------------------------------------------------------
    def add_frame(self, frame_id: int, marked: bool = False) -> None:
        """Append ``frame_id`` to the frame set (or upgrade its mark).

        Appending an already-present frame only upgrades its marked flag; it
        never clears an existing mark.  Frames are normally inserted in
        increasing order; when merging from several source states an older
        frame may arrive late, in which case the mapping is re-sorted so that
        expiry can keep treating expired frames as a prefix.
        """
        current = self._frames.get(frame_id)
        if current is None:
            self._frames[frame_id] = marked
            if marked:
                self._marked_count += 1
            if frame_id > self._max_frame:
                self._max_frame = frame_id
            else:
                # Out-of-order insertion (only possible while merging source
                # frame sets into a freshly created state): restore ordering.
                self._frames = dict(sorted(self._frames.items()))
        elif marked and not current:
            self._frames[frame_id] = True
            self._marked_count += 1

    def mark_frame(self, frame_id: int) -> None:
        """Mark an already-present frame as a key frame."""
        self.add_frame(frame_id, marked=True)

    def merge_from(self, other: "State", copy_marks: bool) -> None:
        """Merge another state's frame set (and optionally marks) into this one.

        Used when the same object set is derivable from several sources in one
        window step (the ``merge`` operations of Algorithm 1).
        """
        if other is self:
            return
        for frame_id, marked in other._frames.items():
            self.add_frame(frame_id, marked=marked and copy_marks)

    def expire_before(self, oldest_valid: int) -> None:
        """Drop every frame with id smaller than ``oldest_valid``."""
        # Frames are insertion-ordered and strictly increasing, so expired
        # frames form a prefix of the mapping.
        expired: List[int] = []
        for frame_id in self._frames:
            if frame_id < oldest_valid:
                expired.append(frame_id)
            else:
                break
        for frame_id in expired:
            if self._frames.pop(frame_id):
                self._marked_count -= 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def frame_ids(self) -> Tuple[int, ...]:
        """The frame ids of the state, oldest first."""
        return tuple(self._frames)

    @property
    def marked_frame_ids(self) -> Tuple[int, ...]:
        """The marked (key) frame ids of the state, oldest first."""
        return tuple(fid for fid, marked in self._frames.items() if marked)

    @property
    def frame_count(self) -> int:
        """Number of frames currently in the frame set."""
        return len(self._frames)

    @property
    def marked_count(self) -> int:
        """Number of marked frames currently in the frame set."""
        return self._marked_count

    @property
    def is_empty(self) -> bool:
        """True when every frame of the state has expired."""
        return not self._frames

    @property
    def is_valid(self) -> bool:
        """True when the state carries at least one marked frame.

        For MFS and SSG a state is valid (its object set is an MCOS of its
        frame set) if and only if at least one marked frame remains in the
        window -- Theorems 1 and 4 of the paper.
        """
        return self._marked_count > 0

    def is_satisfied(self, duration: int) -> bool:
        """True when the frame set meets the duration threshold ``d``."""
        return len(self._frames) >= duration

    def contains_frame(self, frame_id: int) -> bool:
        """True when ``frame_id`` is currently part of the frame set."""
        return frame_id in self._frames

    def snapshot(self) -> Tuple[FrozenSet[int], Tuple[int, ...]]:
        """Return an immutable ``(object_ids, frame_ids)`` snapshot."""
        return (self.object_ids, tuple(self._frames))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        frames = ", ".join(
            f"*{fid}" if marked else str(fid) for fid, marked in self._frames.items()
        )
        objs = ",".join(str(o) for o in sorted(self.object_ids))
        return f"State({{{objs}}}, {{{frames}}})"


class StateTable:
    """A hash table mapping object sets to their states.

    All generators maintain their live states here; the SSG generator layers a
    graph structure on top of the same table.
    """

    def __init__(self) -> None:
        self._by_object_set: Dict[FrozenSet[int], State] = {}

    def __len__(self) -> int:
        return len(self._by_object_set)

    def __contains__(self, object_ids: FrozenSet[int]) -> bool:
        return object_ids in self._by_object_set

    def __iter__(self):
        return iter(self._by_object_set.values())

    def get(self, object_ids: FrozenSet[int]) -> Optional[State]:
        """Return the state for ``object_ids`` if it exists."""
        return self._by_object_set.get(object_ids)

    def get_or_create(self, object_ids: FrozenSet[int]) -> Tuple[State, bool]:
        """Return the state for ``object_ids``, creating it if necessary.

        Returns the state and a flag indicating whether it was newly created.
        """
        state = self._by_object_set.get(object_ids)
        if state is not None:
            return state, False
        state = State(object_ids)
        self._by_object_set[object_ids] = state
        return state, True

    def add(self, state: State) -> None:
        """Insert an externally-constructed state."""
        self._by_object_set[state.object_ids] = state

    def remove(self, state: State) -> None:
        """Remove a state from the table (no-op if absent)."""
        self._by_object_set.pop(state.object_ids, None)

    def states(self) -> List[State]:
        """Return a list snapshot of the live states."""
        return list(self._by_object_set.values())

    def clear(self) -> None:
        """Drop every state."""
        self._by_object_set.clear()


def intersect(object_ids: FrozenSet[int], other: Iterable[int]) -> FrozenSet[int]:
    """Intersection of two object-id sets as a frozenset."""
    if isinstance(other, frozenset):
        return object_ids & other
    return object_ids & frozenset(other)
