"""State primitives shared by all MCOS generators.

A *state* (Definition 3 in the paper) couples a co-occurrence object set with
the set of window frames in which the objects appear jointly.  The MFS and SSG
approaches additionally *mark* certain frames (the Marked Frame Set,
Section 4.2.3); the presence of at least one marked, non-expired frame
certifies that the state's object set is a Maximum Co-occurrence Object Set of
its frame set (Theorems 1 and 4).

Fast-path representation
------------------------
States live on the hottest loop of the system, so both halves use the compact
kernel representations:

* the object set is an ``int`` bitmask produced by a shared
  :class:`~repro.core.interning.ObjectInterner` (intersection is ``&``,
  subset is ``a & b == a``, the state table keys on the int);
* the frame set is a run-length :class:`~repro.core.framespan.FrameSpan`
  (O(1) append/expiry, O(runs) merge).

The ``frozenset`` view of the object set and the tuple view of the frame set
are decoded lazily and only at the reporting boundary (``object_ids``,
``frame_ids``, :meth:`State.to_result`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.framespan import FrameSpan
from repro.core.interning import ObjectInterner
from repro.core.result import ResultState


class State:
    """A co-occurrence object set (bitmask) with its (marked) frame span."""

    __slots__ = (
        "bits",
        "span",
        "terminated",
        "flag",
        "children",
        "parents",
        "_interner",
        "_object_ids",
        "_result",
        "_result_revision",
        # Array-kernel working fields (owned by repro.core.arraykernel's
        # ArraySSGGenerator; the other generators leave them at their
        # defaults).  Held as slots because the kernel reads them on every
        # visit — attribute access beats an external side table.
        "slot",
        "cached_inter",
        "cached_tgt",
    )

    def __init__(
        self,
        bits: int,
        interner: Optional[ObjectInterner] = None,
        object_ids: Optional[FrozenSet[int]] = None,
    ):
        if not bits:
            raise ValueError("a state must have a non-empty object set")
        #: Bitmask of the object set (interned; table/graph key).
        self.bits: int = bits
        #: Run-length frame set with marked frames.
        self.span: FrameSpan = FrameSpan()
        #: Set by the Proposition-1 pruning strategy (Section 5.3) when the
        #: state's MCOS fails every registered >=-only query.
        self.terminated: bool = False
        #: Visitation stamp used by the SSG traversal: set to the current
        #: frame id when the state is scheduled, so each state is visited at
        #: most once per frame without a hash-set membership test.
        self.flag: int = -1
        #: SSG adjacency, held on the state so the traversal loop follows
        #: edges with attribute reads instead of map lookups.  ``None`` until
        #: the SSG generator registers the state as a graph node; unused by
        #: the other generators.
        self.children: Optional[Dict[int, "State"]] = None
        self.parents: Optional[Dict[int, "State"]] = None
        self._interner = interner
        self._object_ids = object_ids
        self._result: Optional[ResultState] = None
        self._result_revision = -1
        #: Array-kernel fields, see repro.core.arraykernel.  ``slot`` is the
        #: state's row in the kernel's flat columns / mask matrix (-1 while
        #: not a live graph node — the kernel also uses it as the liveness
        #: check for cached merge targets); ``cached_inter``/``cached_tgt``
        #: memoise the state's last partial-visit derivation (intersection
        #: key and target state) so repeat visits with an unchanged
        #: derivation skip the merge machinery entirely.
        self.slot: int = -1
        self.cached_inter: int = -1
        self.cached_tgt: Optional["State"] = None

    # ------------------------------------------------------------------
    # Object-set views
    # ------------------------------------------------------------------
    @property
    def object_ids(self) -> FrozenSet[int]:
        """The object set as a frozenset (decoded lazily, cached)."""
        ids = self._object_ids
        if ids is None:
            if self._interner is None:
                raise ValueError("state has neither an interner nor object ids")
            ids = self._interner.decode(self.bits)
            self._object_ids = ids
        return ids

    @property
    def size(self) -> int:
        """Number of objects in the state's object set (popcount, O(1))."""
        return self.bits.bit_count()

    # ------------------------------------------------------------------
    # Frame-set maintenance
    # ------------------------------------------------------------------
    def add_frame(self, frame_id: int, marked: bool = False) -> None:
        """Append ``frame_id`` to the frame set (or upgrade its mark).

        Appending an already-present frame only upgrades its marked flag; it
        never clears an existing mark.
        """
        self.span.append(frame_id, marked)

    def mark_frame(self, frame_id: int) -> None:
        """Mark an already-present frame as a key frame."""
        self.span.append(frame_id, marked=True)

    def merge_from(self, other: "State", copy_marks: bool) -> None:
        """Merge another state's frame set (and optionally marks) into this one.

        Used when the same object set is derivable from several sources in one
        window step (the ``merge`` operations of Algorithm 1).  A single
        interval-union pass — late-arriving frames are spliced in one O(runs)
        merge instead of a per-frame re-sort.
        """
        if other is self:
            return
        self.span.merge(other.span, copy_marks=copy_marks)

    def expire_before(self, oldest_valid: int) -> None:
        """Drop every frame with id smaller than ``oldest_valid``."""
        self.span.expire_before(oldest_valid)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def frame_ids(self) -> Tuple[int, ...]:
        """The frame ids of the state, oldest first (decoded)."""
        return self.span.frame_ids()

    @property
    def marked_frame_ids(self) -> Tuple[int, ...]:
        """The marked (key) frame ids of the state, oldest first."""
        return self.span.marked_ids()

    @property
    def frame_count(self) -> int:
        """Number of frames currently in the frame set (O(1))."""
        return self.span.frame_count

    @property
    def marked_count(self) -> int:
        """Number of marked frames currently in the frame set (O(1))."""
        return self.span.marked_count

    @property
    def is_empty(self) -> bool:
        """True when every frame of the state has expired."""
        return self.span.is_empty

    @property
    def is_valid(self) -> bool:
        """True when the state carries at least one marked frame.

        For MFS and SSG a state is valid (its object set is an MCOS of its
        frame set) if and only if at least one marked frame remains in the
        window -- Theorems 1 and 4 of the paper.
        """
        return self.span.marked_count > 0

    def is_satisfied(self, duration: int) -> bool:
        """True when the frame set meets the duration threshold ``d``."""
        return self.span.frame_count >= duration

    def contains_frame(self, frame_id: int) -> bool:
        """True when ``frame_id`` is currently part of the frame set."""
        return self.span.contains(frame_id)

    def snapshot(self) -> Tuple[FrozenSet[int], Tuple[int, ...]]:
        """Return an immutable ``(object_ids, frame_ids)`` snapshot."""
        return (self.object_ids, self.span.frame_ids())

    def export_snapshot(self) -> Dict:
        """Snapshot the state for checkpointing (bits, span, terminated flag).

        Adjacency (``children``/``parents``) is graph-owned and exported by
        the SSG generator alongside the table; the visitation stamp and the
        decoded-result caches are rebuilt lazily and are not exported.
        """
        return {
            "bits": self.bits,
            "span": self.span.export_snapshot(),
            "terminated": self.terminated,
        }

    @classmethod
    def from_snapshot(
        cls, snapshot: Dict, interner: Optional[ObjectInterner] = None
    ) -> "State":
        """Rebuild a state from an :meth:`export_snapshot` payload."""
        state = cls(int(snapshot["bits"]), interner)
        state.span = FrameSpan.from_snapshot(snapshot["span"])
        state.terminated = bool(snapshot.get("terminated", False))
        return state

    def to_result(self) -> ResultState:
        """Decode the state into an immutable :class:`ResultState`.

        The decoded record is cached against the span's revision counter, so
        states that did not change between reports are not re-decoded.
        """
        revision = self.span.revision
        result = self._result
        if result is None or self._result_revision != revision:
            result = ResultState(self.object_ids, self.span.frame_ids())
            self._result = result
            self._result_revision = revision
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        marked = set(self.span.marked_ids())
        frames = ", ".join(
            f"*{fid}" if fid in marked else str(fid)
            for fid in self.span.frame_ids()
        )
        try:
            objs = ",".join(str(o) for o in sorted(self.object_ids))
        except ValueError:
            objs = bin(self.bits)
        return f"State({{{objs}}}, {{{frames}}})"


class StateTable:
    """A hash table mapping interned object-set bitmasks to their states.

    All generators maintain their live states here; the SSG generator layers a
    graph structure on top of the same table.  Keys are plain ints, so lookups
    avoid frozenset hashing entirely.
    """

    __slots__ = ("_interner", "_by_bits")

    def __init__(self, interner: Optional[ObjectInterner] = None) -> None:
        self._interner = interner if interner is not None else ObjectInterner()  # repro-lint: disable=CKPT-DRIFT -- shared interner is injected by the owning generator, whose checkpoint round-trips it
        self._by_bits: Dict[int, State] = {}

    @property
    def interner(self) -> ObjectInterner:
        """The interner whose masks key this table."""
        return self._interner

    def __len__(self) -> int:
        return len(self._by_bits)

    def __contains__(self, bits: int) -> bool:
        return bits in self._by_bits

    def __iter__(self) -> Iterator[State]:
        return iter(self._by_bits.values())

    def get(self, bits: int) -> Optional[State]:
        """Return the state for the bitmask ``bits`` if it exists."""
        return self._by_bits.get(bits)

    def get_or_create(self, bits: int) -> Tuple[State, bool]:
        """Return the state for ``bits``, creating it if necessary.

        Returns the state and a flag indicating whether it was newly created.
        """
        state = self._by_bits.get(bits)
        if state is not None:
            return state, False
        state = State(bits, self._interner)
        self._by_bits[bits] = state
        return state, True

    def add(self, state: State) -> None:
        """Insert an externally-constructed state."""
        self._by_bits[state.bits] = state

    def remove(self, state: State) -> None:
        """Remove a state from the table (no-op if absent)."""
        self._by_bits.pop(state.bits, None)

    def states(self) -> List[State]:
        """Return a list snapshot of the live states."""
        return list(self._by_bits.values())

    def live_mask(self) -> int:
        """Union of every live state's bitmask (for interner compaction)."""
        mask = 0
        for bits in self._by_bits:
            mask |= bits
        return mask

    def clear(self) -> None:
        """Drop every state."""
        self._by_bits.clear()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def export_states(self) -> List[Dict]:
        """Snapshot every live state, preserving table insertion order.

        Insertion order matters: the generators' report loops iterate the
        table, so restoring states in a different order would permute result
        sets and break byte-identical resume.
        """
        return [state.export_snapshot() for state in self._by_bits.values()]

    def import_states(self, snapshots: Iterable[Dict]) -> None:
        """Rebuild the table (in place) from an :meth:`export_states` payload."""
        self._by_bits.clear()
        for snapshot in snapshots:
            state = State.from_snapshot(snapshot, self._interner)
            if state.bits in self._by_bits:
                raise ValueError(
                    f"duplicate state bitmask {state.bits} in table snapshot"
                )
            self._by_bits[state.bits] = state
