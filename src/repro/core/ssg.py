"""The Strict State Graph (SSG) approach (Section 4.3).

SSG organises the maintained states in a directed graph whose edges point from
larger object sets to smaller ones (Property 1).  Principal states -- states
whose object set equals the object set of some frame still inside the window
-- act as traversal roots.  When a new frame arrives, the State Traversal (ST)
algorithm walks the graph starting from the roots, computing intersections
with the arriving frame and *pruning entire subtrees as soon as an
intersection becomes empty* (every descendant of a state is a subset of it, so
its intersection is empty as well).  This is where SSG saves work compared to
MFS, which must intersect every live state with every arriving frame.

Two auxiliary procedures complete the approach:

* edge maintenance keeps the graph *strict* (Property 2: no child of a node is
  a subset of a sibling), re-parenting states when a newly created state
  subsumes an existing child;
* the CNPS procedure (Algorithm 2) connects the new principal state to the
  graph, choosing candidate children in descending object-set size and
  skipping candidates already reachable from previously selected ones.

Frame marking follows the same semantics as
:class:`~repro.core.mfs.MarkedFrameSetGenerator`, so both approaches report
identical result state sets; only the amount of maintenance work differs.

Fast-path representation
------------------------
Graph nodes are the states' interned ``int`` bitmasks: intersections are
``&`` and the Property-2 subset checks are ``a & b == a`` -- no frozenset is
materialised anywhere on the traversal path.  Adjacency lives directly on the
:class:`~repro.core.state.State` objects (``state.children`` /
``state.parents`` map child/parent bits to their states), so the traversal
follows edges with attribute reads, stamps visits into ``state.flag`` instead
of a hash set, and two memo layers (the span merge memo and the edge
reachability memo) turn the per-frame re-derivations that dominate steady
state into O(1) skips.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.base import MCOSGenerator
from repro.core.result import ResultStateSet
from repro.core.state import State, StateTable
from repro.datamodel.observation import FrameObservation

#: Interned object-set bitmask (graph/table key).
ObjectBits = int


class StrictStateGraphGenerator(MCOSGenerator):
    """MCOS generator maintaining states in a Strict State Graph."""

    name = "SSG"

    def __init__(self, window_size: int, duration: int, **kwargs):
        super().__init__(window_size, duration, **kwargs)
        self._states = StateTable(self.interner)
        # Parentless graph nodes, maintained incrementally (traversal roots).
        self._root_keys: Dict[ObjectBits, State] = {}
        # Principal states: bitmask -> creating frame ids still in window,
        # kept in arrival order (dict preserves insertion order).
        self._principals: Dict[ObjectBits, List[int]] = {}
        # Result carry-over (Section 4.3.7): satisfied valid states from the
        # previous window that were not revisited may still be part of the
        # result of the current window.
        self._previous_results: Dict[ObjectBits, State] = {}
        # Edge requests already known to be satisfied (the child is reachable
        # from the parent), keyed by the two states' span serials (unique per
        # state incarnation, so re-created object sets never alias).  Entries
        # stay valid for the lifetime of both states: Property-2 repairs and
        # node removals re-route every broken path before returning (removals
        # bypass this memo when re-attaching, see _remove_node).
        self._edge_memo: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Graph helpers
    # ------------------------------------------------------------------
    def _register_node(self, state: State) -> None:
        if state.children is None:
            state.children = {}
            state.parents = {}
            self._root_keys[state.bits] = state

    def _ensure_edge(self, parent_state: State, child_state: State) -> None:
        """Ensure ``child`` is reachable from ``parent``, repairing Property 2.

        Memoised per state pair: the same derivation repeats every frame
        while a co-occurrence persists, and nothing the graph maintenance
        does breaks established reachability (repairs and removals re-route
        every path they cut), so a satisfied request stays satisfied for the
        lifetime of the two states.
        """
        memo = self._edge_memo
        key = (parent_state.span.serial, child_state.span.serial)
        if key in memo:
            return
        self._add_edge(parent_state, child_state)
        memo.add(key)

    def _add_edge(self, parent_state: State, child_state: State) -> None:
        """Uncached edge insertion with Property-2 sibling repair."""
        parent = parent_state.bits
        child = child_state.bits
        if parent == child:
            return
        siblings = parent_state.children
        if siblings is None:
            self._register_node(parent_state)
            siblings = parent_state.children
        elif child in siblings:
            # The edge already exists: by far the most common call (the same
            # derivation repeats every frame while a co-occurrence persists).
            return
        else:
            # Second-most common repeat: the child already hangs below one of
            # ``parent``'s children (a previous Property-2 repair routed it
            # there).  It is then reachable from ``parent``, no edge is needed
            # and no sibling of ``parent`` can violate strictness against it.
            child_parents = child_state.parents
            if child_parents:
                for via in child_parents:
                    if via in siblings:
                        return
        self._register_node(child_state)
        # Property-2 repair: a sibling that is a subset of the new child moves
        # below it; if the new child is a subset of a sibling, attach it below
        # that sibling instead of below ``parent``.  Subset tests are single
        # mask operations, so no size pre-check is needed.
        for sibling in list(siblings):
            if sibling & child == sibling:
                # sibling is a proper subset of child (they are distinct).
                # Reachability parent => sibling survives via the new child.
                sibling_state = siblings.pop(sibling)
                sibling_state.parents.pop(parent, None)
                self.stats.edges_removed += 1
                # Memoised: if the sibling is already known reachable from
                # the child, the detached edge was redundant (edges run
                # superset -> subset, so no path child => sibling could have
                # used the removed parent -> sibling edge).
                self._ensure_edge(child_state, sibling_state)
            elif child & sibling == child:
                self._ensure_edge(siblings[sibling], child_state)
                return
        siblings[child] = child_state
        child_state.parents[parent] = parent_state
        self._root_keys.pop(child, None)
        self.stats.edges_added += 1

    def _remove_node(self, state: State) -> None:
        """Remove a state's node, re-attaching its children to its parents.

        Re-attachment restores every ancestor=>descendant path that went
        through the removed node, which is what keeps the `_ensure_edge`
        memo valid; the re-attachment itself must therefore use the uncached
        `_add_edge`.
        """
        bits = state.bits
        children = state.children
        parents = state.parents
        state.children = None
        state.parents = None
        self._root_keys.pop(bits, None)
        if parents:
            for parent_state in parents.values():
                parent_children = parent_state.children
                if parent_children is not None:
                    parent_children.pop(bits, None)
                self.stats.edges_removed += 1
        if children:
            for child_bits, child_state in children.items():
                child_parents = child_state.parents
                if child_parents is None:
                    continue
                child_parents.pop(bits, None)
                self.stats.edges_removed += 1
                if parents:
                    for parent_state in parents.values():
                        self._add_edge(parent_state, child_state)
                elif not child_parents:
                    self._root_keys[child_bits] = child_state
        self._principals.pop(bits, None)
        self._previous_results.pop(bits, None)

    def _roots(self) -> List[State]:
        """Traversal roots: principal states first (arrival order), then any
        other parentless state (maintained incrementally)."""
        roots: List[State] = []
        seen: Set[ObjectBits] = set()
        states_get = self._states._by_bits.get
        for bits in self._principals:
            state = states_get(bits)
            if state is not None and bits not in seen:
                roots.append(state)
                seen.add(bits)
        for bits, state in self._root_keys.items():
            if bits not in seen:
                roots.append(state)
                seen.add(bits)
        return roots

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _process(self, frame: FrameObservation, frame_bits: int) -> ResultStateSet:
        frame_id = frame.frame_id
        oldest_valid = self._oldest_valid_frame(frame_id)
        self._expire_principals(oldest_valid)

        result_candidates: Dict[ObjectBits, State] = {}
        if frame_bits:
            self._traverse_and_integrate(
                frame_id, frame_bits, oldest_valid, result_candidates
            )

        self._track_live_states(len(self._states))
        if len(self._edge_memo) > 64 * len(self._states) + 1024:
            self._prune_edge_memo()
        return self._report(frame_id, oldest_valid, result_candidates)

    def _prune_edge_memo(self) -> None:
        """Drop edge-memo entries whose states are gone.

        Span serials are never reused, so entries referencing dead states are
        dead weight; on a long-running stream they would otherwise accumulate
        without bound.  Amortised: runs only when the memo outgrows the live
        state count by a wide margin.
        """
        live = {state.span.serial for state in self._states}
        self._edge_memo = {
            key for key in self._edge_memo
            if key[0] in live and key[1] in live
        }

    def _expire_principals(self, oldest_valid: int) -> None:
        """Drop expired creating frames; forget principals with none left."""
        stale = []
        for bits, creating_frames in self._principals.items():
            if creating_frames[0] < oldest_valid:
                creating_frames[:] = [f for f in creating_frames if f >= oldest_valid]
            if not creating_frames:
                stale.append(bits)
        for bits in stale:
            del self._principals[bits]

    def _traverse_and_integrate(
        self, frame_id: int, frame_bits: int, oldest_valid: int,
        result_candidates: Dict[ObjectBits, State],
    ) -> None:
        """Run the State Traversal algorithm for one arriving frame.

        Satisfied, valid states touched by the traversal are collected into
        ``result_candidates`` as they are mutated (additions within a frame
        are monotone, so checking at each mutation point is equivalent to the
        end-of-frame scan the seed implementation performed over every
        visited state).
        """
        # The new principal state is created up-front so that mark propagation
        # and edge insertion can target it during the traversal.
        principal, created = self._states.get_or_create(frame_bits)
        if created:
            self.stats.states_created += 1
            if not self._keep_new_state(frame_bits):
                # Proposition 1: the whole frame (and hence every state that
                # could be derived from it) cannot satisfy any query.  Keep a
                # terminated marker so the check is not repeated per frame.
                principal.terminated = True
                principal.add_frame(frame_id, marked=True)
                return
            self._register_node(principal)
        elif principal.terminated:
            return
        else:
            # The state may not have been visited for a while; drop expired
            # frames before extending it so its frame set stays inside the
            # window.
            principal.span.expire_before(oldest_valid)
        principal.span.append(frame_id, marked=True)
        self.stats.frames_appended += 1
        self._principals.setdefault(frame_bits, []).append(frame_id)

        # Candidate children of the new principal state (Theorem 2): at most
        # one per traversal root, namely the state whose object set equals the
        # root's intersection with the arriving frame.
        candidates: Dict[ObjectBits, None] = {}

        # Schedule every unvisited root up-front: one shared stack for the
        # whole frame avoids per-root traversal setup.
        stack: List[State] = []
        for root in self._roots():
            root_key = root.bits
            if root_key == frame_bits:
                continue
            root_inter = root_key & frame_bits
            if root_inter and root_inter != frame_bits:
                candidates.setdefault(root_inter, None)
            if root.flag != frame_id:
                root.flag = frame_id
                stack.append(root)
        if stack:
            self._traverse(stack, frame_bits, frame_id, oldest_valid,
                           result_candidates)

        self._connect_new_principal(principal, candidates)
        span = principal.span
        if span.frame_count >= self.config.duration:
            result_candidates[frame_bits] = principal

    def _traverse(
        self,
        stack: List[State],
        frame_bits: int,
        frame_id: int,
        oldest_valid: int,
        result_candidates: Dict[ObjectBits, State],
    ) -> None:
        """Iterative State Traversal (Algorithm 1) over the scheduled roots.

        Each reachable state is visited at most once per frame (its ``flag``
        is stamped with the frame id when scheduled); whole subtrees are
        skipped as soon as a state's intersection with the arriving frame is
        empty.
        """
        states = self._states
        by_bits = states._by_bits
        interner = self.interner
        stats = self.stats
        edge_memo = self._edge_memo
        add_edge_memo = edge_memo.add
        duration = self.config.duration
        removed = 0
        survived = 0
        appended = 0
        pop = stack.pop
        push = stack.append
        while stack:
            state = pop()
            key = state.bits

            span = state.span
            # Live states always hold at least one frame, so the head index is
            # in range; expire only when the oldest frame actually left.  The
            # overwhelmingly common slide trims the first run by one frame and
            # expires no marks: inlined, with the general path as fallback.
            sp_head = span._head
            sp_starts = span._starts
            first = sp_starts[sp_head]
            if first < oldest_valid:
                marked = span._marked
                mhead = span._mhead
                if (span._ends[sp_head] >= oldest_valid
                        and (mhead >= len(marked)
                             or marked[mhead] >= oldest_valid)):
                    span.frame_count -= oldest_valid - first
                    sp_starts[sp_head] = oldest_valid
                    span.revision += 1
                else:
                    span.expire_before(oldest_valid)
            if span.marked_count == 0:
                # No live marks left (which also covers an empty frame set,
                # marks being a subset of frames): the state is invalid.
                # Snapshot the children before pruning: _remove_node
                # re-attaches them elsewhere but they must still be visited in
                # this traversal, otherwise their frame sets miss the frame.
                removed += 1
                children = state.children
                child_snapshot = list(children.values()) if children else None
                states.remove(state)
                self._remove_node(state)
                if child_snapshot:
                    for child in child_snapshot:
                        if child.flag != frame_id:
                            child.flag = frame_id
                            push(child)
                continue
            survived += 1

            inter = key & frame_bits
            if not inter:
                # Every descendant is a subset of this state, hence its
                # intersection with the arriving frame is empty too: prune the
                # whole subtree from the traversal.
                if span.frame_count >= duration:
                    result_candidates[key] = state
                continue

            if inter == key:
                # All of the state's objects appear in the arriving frame:
                # append only (Algorithm 1, lines 18-21).  Connecting subset
                # states to the new principal is the job of the CNPS
                # procedure, which selects at most one candidate per root.
                # Inlined FrameSpan.append fast paths: extend-tail-by-one and
                # duplicate-of-tail cover almost every call.
                sp_ends = span._ends
                last = sp_ends[-1]
                if last == frame_id - 1:
                    sp_ends[-1] = frame_id
                    span.frame_count += 1
                    span.revision += 1
                elif last != frame_id:
                    span.append(frame_id)
                appended += 1
            else:
                target = by_bits.get(inter)
                if target is None:
                    target = State(inter, interner)
                    by_bits[inter] = target
                    stats.states_created += 1
                    if not self._keep_new_state(inter):
                        # Proposition 1: keep a terminated marker outside the
                        # graph; it is never traversed, merged or reported.
                        target.terminated = True
                        target.add_frame(frame_id, marked=True)
                        target = None  # type: ignore[assignment]
                elif target.terminated:
                    target = None  # type: ignore[assignment]
                if target is not None:
                    if target.children is None:
                        self._register_node(target)
                    tspan = target.span
                    # Inlined merge-memo hit check (the common case: the same
                    # derivation repeated with an unchanged source).
                    memo = tspan._merge_memo
                    entry = memo.get(span.serial) if memo is not None else None
                    if entry is not None and entry[0] == span.revision \
                            and entry[3] == span.marks_revision:
                        pass  # source unchanged: provable no-op
                    elif (entry is not None
                            and entry[1] == span.mid_revision
                            and entry[3] == span.marks_revision
                            and span._ends[-1] <= tspan._ends[-1]
                            and tspan._starts[-1] <= entry[2] + 1):
                        # Source only appended frames since the last merge and
                        # they all lie inside the target's tail run: record
                        # the catch-up without touching either span.
                        entry[0] = span.revision
                        entry[2] = span._ends[-1]
                    else:
                        tspan.merge(span, True, entry)
                    t_ends = tspan._ends
                    last = t_ends[-1]
                    if last == frame_id - 1:
                        t_ends[-1] = frame_id
                        tspan.frame_count += 1
                        tspan.revision += 1
                    elif last != frame_id:
                        tspan.append(frame_id)
                    appended += 1
                    # Inlined _ensure_edge (the memo hit is the common case).
                    ekey = (span.serial, tspan.serial)
                    if ekey not in edge_memo:
                        self._add_edge(state, target)
                        add_edge_memo(ekey)
                    if tspan.frame_count >= duration and tspan.marked_count:
                        result_candidates[inter] = target

            if span.frame_count >= duration:
                result_candidates[key] = state

            # Push children for traversal (re-read after the edge maintenance
            # above, which may have re-parented some of them).  The child set
            # is not mutated while iterating: graph edits only happen when a
            # state is popped from the stack.
            children = state.children
            if children:
                for child in children.values():
                    if child.flag != frame_id:
                        child.flag = frame_id
                        push(child)
        stats.state_visits += survived + removed
        stats.states_removed += removed
        stats.intersections += survived  # one ``&`` per surviving visit
        stats.frames_appended += appended

    def _connect_new_principal(
        self, principal: State, candidates: Dict[ObjectBits, None]
    ) -> None:
        """Connect the new principal state to selected candidates (Algorithm 2).

        Candidates are processed in descending object-set size; a candidate is
        skipped when it is a subset of an already-selected one, which both
        keeps Property 2 (no child of the principal contains another) and
        avoids redundant edges.  Reachability of skipped candidates is
        preserved because they are already connected to the graph through the
        source states they were derived from.
        """
        frame_bits = principal.bits
        states_get = self._states._by_bits.get
        ordered = sorted(candidates, key=int.bit_count, reverse=True)
        selected: List[ObjectBits] = []
        for candidate in ordered:
            if candidate == frame_bits:
                continue
            candidate_state = states_get(candidate)
            if candidate_state is None or candidate_state.terminated:
                # Proposition-1 terminated markers live outside the graph;
                # connecting one would let the traversal revive and report it.
                continue
            if any(candidate & chosen == candidate for chosen in selected):
                continue
            self._ensure_edge(principal, candidate_state)
            selected.append(candidate)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(
        self, frame_id: int, oldest_valid: int,
        result_candidates: Dict[ObjectBits, State],
    ) -> ResultStateSet:
        """Combine the carried-over result set with the traversal candidates.

        ``SR_{i'} = SR'_i  u  SR_{G'}`` in the paper's notation: states that
        were part of the previous result and are still alive, satisfied and
        valid, plus the satisfied valid states touched by this traversal
        (collected during the traversal itself).
        """
        duration = self.config.duration
        new_results: Dict[ObjectBits, State] = {}
        states_get = self._states._by_bits.get

        for bits, state in list(self._previous_results.items()):
            if states_get(bits) is not state:
                continue
            span = state.span
            if span._head < len(span._starts) and \
                    span._starts[span._head] < oldest_valid:
                span.expire_before(oldest_valid)
            if span.marked_count == 0:
                self._states.remove(state)
                self._remove_node(state)
                self.stats.states_removed += 1
                continue
            if span.frame_count >= duration:
                new_results[bits] = state

        for bits, state in result_candidates.items():
            # A state removed or expired after it became a candidate fails
            # the span checks, so no table lookup is needed to filter stale
            # entries.
            span = state.span
            if span.marked_count > 0 and span.frame_count >= duration:
                new_results[bits] = state

        self._previous_results = new_results
        result = ResultStateSet(frame_id)
        add = result.add_unique
        for state in new_results.values():
            add(state.to_result())
        return result

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _reset_impl(self) -> None:
        self._states = StateTable(self.interner)
        self._root_keys = {}
        self._principals = {}
        self._previous_results = {}
        self._edge_memo = set()

    def live_state_count(self) -> int:
        return len(self._states)

    def live_states(self) -> List[State]:
        """Snapshot of the currently maintained states (for tests)."""
        return self._states.states()

    def _live_mask(self) -> int:
        return self._states.live_mask()

    def _export_impl(self) -> Dict:
        """Checkpoint the table plus the graph layered on top of it.

        Adjacency is exported as explicit per-state child/parent bit lists
        (``None`` for states that are not graph nodes, i.e. terminated
        markers) because dict insertion order steers Property-2 repairs and
        traversal order — rebuilding adjacency from one side only could
        permute the other side's order and de-synchronise a restored shard
        from its uninterrupted twin.

        The edge-reachability memo must be exported too, translated from
        process-local span serials to state bitmasks: a memoised
        "reachability satisfied" verdict suppresses future ``_add_edge``
        calls, so a restored run without it could insert edges the original
        never would, evolving a differently-shaped (equally correct, but not
        byte-identical) graph.  Entries whose states are gone are dropped,
        exactly as ``_prune_edge_memo`` would.
        """
        graph = []
        state_by_serial: Dict[int, State] = {}
        for state in self._states:
            state_by_serial[state.span.serial] = state
            graph.append([
                list(state.children) if state.children is not None else None,
                list(state.parents) if state.parents is not None else None,
            ])
        edge_memo = sorted(
            (state_by_serial[a].bits, state_by_serial[b].bits)
            for a, b in self._edge_memo
            if a in state_by_serial and b in state_by_serial
        )
        return {
            "states": self._states.export_states(),
            "graph": graph,
            "roots": list(self._root_keys),
            "principals": [
                [bits, list(frames)] for bits, frames in self._principals.items()
            ],
            "previous_results": list(self._previous_results),
            "edge_memo": [[a, b] for a, b in edge_memo],
        }

    def _import_impl(self, payload: Dict) -> None:
        self._states.import_states(payload["states"])
        by_bits = self._states._by_bits

        def resolve(bits: int) -> State:
            state = by_bits.get(int(bits))
            if state is None:
                raise ValueError(
                    f"SSG checkpoint references unknown state bitmask {bits}"
                )
            return state

        states = self._states.states()
        graph = payload["graph"]
        if len(graph) != len(states):
            raise ValueError(
                "SSG checkpoint graph does not align with its state table "
                f"({len(graph)} adjacency entries for {len(states)} states)"
            )
        for state, (children, parents) in zip(states, graph):
            if children is not None:
                state.children = {int(b): resolve(b) for b in children}
            if parents is not None:
                state.parents = {int(b): resolve(b) for b in parents}
        self._root_keys = {int(b): resolve(b) for b in payload["roots"]}
        self._principals = {
            int(bits): [int(f) for f in frames]
            for bits, frames in payload["principals"]
        }
        self._previous_results = {
            int(b): resolve(b) for b in payload["previous_results"]
        }
        self._edge_memo = {
            (resolve(a).span.serial, resolve(b).span.serial)
            for a, b in payload.get("edge_memo", [])
        }

    def edges(self) -> List[Tuple[FrozenSet[int], FrozenSet[int]]]:
        """All ``(parent, child)`` edges of the graph, decoded (tests only)."""
        decode = self.interner.decode
        return [
            (decode(state.bits), decode(child_bits))
            for state in self._states
            for child_bits in (state.children or ())
        ]

    def principal_object_sets(self) -> List[FrozenSet[int]]:
        """Object sets of the current principal states, decoded, arrival order."""
        decode = self.interner.decode
        return [decode(bits) for bits in self._principals]
