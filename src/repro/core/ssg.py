"""The Strict State Graph (SSG) approach (Section 4.3).

SSG organises the maintained states in a directed graph whose edges point from
larger object sets to smaller ones (Property 1).  Principal states -- states
whose object set equals the object set of some frame still inside the window
-- act as traversal roots.  When a new frame arrives, the State Traversal (ST)
algorithm walks the graph starting from the roots, computing intersections
with the arriving frame and *pruning entire subtrees as soon as an
intersection becomes empty* (every descendant of a state is a subset of it, so
its intersection is empty as well).  This is where SSG saves work compared to
MFS, which must intersect every live state with every arriving frame.

Two auxiliary procedures complete the approach:

* edge maintenance keeps the graph *strict* (Property 2: no child of a node is
  a subset of a sibling), re-parenting states when a newly created state
  subsumes an existing child;
* the CNPS procedure (Algorithm 2) connects the new principal state to the
  graph, choosing candidate children in descending object-set size and
  skipping candidates already reachable from previously selected ones.

Frame marking follows the same semantics as
:class:`~repro.core.mfs.MarkedFrameSetGenerator`, so both approaches report
identical result state sets; only the amount of maintenance work differs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.base import MCOSGenerator
from repro.core.result import ResultState, ResultStateSet
from repro.core.state import State, StateTable
from repro.datamodel.observation import FrameObservation

ObjectSet = FrozenSet[int]


class StrictStateGraphGenerator(MCOSGenerator):
    """MCOS generator maintaining states in a Strict State Graph."""

    name = "SSG"

    def __init__(self, window_size: int, duration: int, **kwargs):
        super().__init__(window_size, duration, **kwargs)
        self._states = StateTable()
        # Graph adjacency keyed by object set (object sets are unique per state).
        self._children: Dict[ObjectSet, Set[ObjectSet]] = {}
        self._parents: Dict[ObjectSet, Set[ObjectSet]] = {}
        # Parentless nodes, maintained incrementally (traversal roots).
        self._root_keys: Dict[ObjectSet, None] = {}
        # Principal states: object set -> creating frame ids still in window,
        # kept in arrival order (dict preserves insertion order).
        self._principals: Dict[ObjectSet, List[int]] = {}
        # Result carry-over (Section 4.3.7): satisfied valid states from the
        # previous window that were not revisited may still be part of the
        # result of the current window.
        self._previous_results: Dict[ObjectSet, State] = {}

    # ------------------------------------------------------------------
    # Graph helpers
    # ------------------------------------------------------------------
    def _register_node(self, object_ids: ObjectSet) -> None:
        if object_ids not in self._parents:
            self._children[object_ids] = set()
            self._parents[object_ids] = set()
            self._root_keys[object_ids] = None

    def _add_edge(self, parent: ObjectSet, child: ObjectSet) -> None:
        """Add ``parent -> child`` and repair Property 2 among the siblings."""
        if parent == child:
            return
        self._register_node(parent)
        self._register_node(child)
        siblings = self._children[parent]
        if child in siblings:
            return
        # Property-2 repair: a sibling that is a subset of the new child moves
        # below it; if the new child is a subset of a sibling, attach it below
        # that sibling instead of below ``parent``.  Length comparisons gate
        # the (comparatively expensive) subset checks.
        child_len = len(child)
        for sibling in list(siblings):
            sibling_len = len(sibling)
            if sibling_len < child_len and sibling < child:
                siblings.discard(sibling)
                self._parents[sibling].discard(parent)
                self.stats.edges_removed += 1
                self._add_edge(child, sibling)
            elif child_len < sibling_len and child < sibling:
                self._add_edge(sibling, child)
                return
        siblings.add(child)
        self._parents[child].add(parent)
        self._root_keys.pop(child, None)
        self.stats.edges_added += 1

    def _remove_node(self, object_ids: ObjectSet) -> None:
        """Remove a state's node, re-attaching its children to its parents."""
        children = self._children.pop(object_ids, set())
        parents = self._parents.pop(object_ids, set())
        self._root_keys.pop(object_ids, None)
        for parent in parents:
            self._children.get(parent, set()).discard(object_ids)
            self.stats.edges_removed += 1
        for child in children:
            child_parents = self._parents.get(child)
            if child_parents is None:
                continue
            child_parents.discard(object_ids)
            self.stats.edges_removed += 1
            if parents:
                for parent in parents:
                    self._add_edge(parent, child)
            elif not child_parents:
                self._root_keys[child] = None
        self._principals.pop(object_ids, None)
        self._previous_results.pop(object_ids, None)

    def _roots(self) -> List[State]:
        """Traversal roots: principal states first (arrival order), then any
        other parentless state (maintained incrementally)."""
        roots: List[State] = []
        seen: Set[ObjectSet] = set()
        for object_ids in self._principals:
            state = self._states.get(object_ids)
            if state is not None and object_ids not in seen:
                roots.append(state)
                seen.add(object_ids)
        for object_ids in list(self._root_keys):
            if object_ids in seen:
                continue
            state = self._states.get(object_ids)
            if state is None:
                del self._root_keys[object_ids]
                continue
            roots.append(state)
            seen.add(object_ids)
        return roots

    def _descendants(self, object_ids: ObjectSet) -> Set[ObjectSet]:
        """All object sets reachable from ``object_ids`` (excluding itself)."""
        result: Set[ObjectSet] = set()
        stack = list(self._children.get(object_ids, ()))
        while stack:
            node = stack.pop()
            if node in result:
                continue
            result.add(node)
            stack.extend(self._children.get(node, ()))
        return result

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _process(self, frame: FrameObservation) -> ResultStateSet:
        frame_id = frame.frame_id
        oldest_valid = self._oldest_valid_frame(frame_id)
        self._expire_principals(oldest_valid)

        objects = frame.object_ids
        visited_states: List[State] = []
        if objects:
            visited_states = self._traverse_and_integrate(frame_id, objects, oldest_valid)

        self._track_live_states(len(self._states))
        return self._report(frame_id, oldest_valid, visited_states)

    def _expire_principals(self, oldest_valid: int) -> None:
        """Drop expired creating frames; forget principals with none left."""
        stale = []
        for object_ids, creating_frames in self._principals.items():
            creating_frames[:] = [f for f in creating_frames if f >= oldest_valid]
            if not creating_frames:
                stale.append(object_ids)
        for object_ids in stale:
            del self._principals[object_ids]

    def _prune_state(self, state: State, oldest_valid: int) -> bool:
        """Expire frames of a state; remove it if dead.  Returns True if kept."""
        state.expire_before(oldest_valid)
        if state.is_empty or not state.is_valid:
            self._states.remove(state)
            self._remove_node(state.object_ids)
            self.stats.states_removed += 1
            return False
        return True

    def _traverse_and_integrate(
        self, frame_id: int, objects: ObjectSet, oldest_valid: int
    ) -> List[State]:
        """Run the State Traversal algorithm for one arriving frame."""
        # The new principal state is created up-front so that mark propagation
        # and edge insertion can target it during the traversal.
        principal, created = self._states.get_or_create(objects)
        if created:
            self.stats.states_created += 1
            if not self._keep_new_state(objects):
                # Proposition 1: the whole frame (and hence every state that
                # could be derived from it) cannot satisfy any query.  Keep a
                # terminated marker so the check is not repeated per frame.
                principal.terminated = True
                principal.add_frame(frame_id, marked=True)
                return []
            self._register_node(objects)
        elif principal.terminated:
            return []
        else:
            # The state may not have been visited for a while; drop expired
            # frames before extending it so its frame set stays inside the
            # window.
            principal.expire_before(oldest_valid)
        principal.add_frame(frame_id, marked=True)
        self.stats.frames_appended += 1
        self._principals.setdefault(objects, []).append(frame_id)

        visited: Set[ObjectSet] = set()
        visited_states: List[State] = []
        # Candidate children of the new principal state (Theorem 2): at most
        # one per traversal root, namely the state whose object set equals the
        # root's intersection with the arriving frame.
        candidates: Dict[ObjectSet, None] = {}

        for root in self._roots():
            root_key = root.object_ids
            if root_key == objects:
                continue
            root_inter = root_key & objects
            if root_inter and root_inter != objects:
                candidates.setdefault(root_inter, None)
            self._traverse_from(root, objects, frame_id, oldest_valid,
                                visited, visited_states)

        self._connect_new_principal(objects, candidates)
        visited_states.append(principal)
        return visited_states

    def _traverse_from(
        self,
        root: State,
        objects: ObjectSet,
        frame_id: int,
        oldest_valid: int,
        visited: Set[ObjectSet],
        visited_states: List[State],
    ) -> None:
        """Iterative State Traversal (Algorithm 1) from one root.

        Each reachable state is visited at most once per frame (shared
        ``visited`` set); whole subtrees are skipped as soon as a state's
        intersection with the arriving frame is empty.
        """
        states = self._states
        children_map = self._children
        stats = self.stats
        stack: List[State] = [root]
        while stack:
            state = stack.pop()
            key = state.object_ids
            if key in visited:
                continue
            visited.add(key)
            stats.state_visits += 1

            # Snapshot the children before pruning: if the state is removed its
            # children are re-attached elsewhere but must still be visited in
            # this traversal, otherwise their frame sets would miss the frame.
            children = children_map.get(key)
            child_snapshot = list(children) if children else None

            state.expire_before(oldest_valid)
            if state.is_empty or not state.is_valid:
                states.remove(state)
                self._remove_node(key)
                stats.states_removed += 1
                if child_snapshot:
                    for child_key in child_snapshot:
                        if child_key not in visited:
                            child = states.get(child_key)
                            if child is not None:
                                stack.append(child)
                continue
            visited_states.append(state)

            stats.intersections += 1
            inter = key & objects
            if not inter:
                # Every descendant is a subset of this state, hence its
                # intersection with the arriving frame is empty too: prune the
                # whole subtree from the traversal.
                continue

            if inter == key:
                # All of the state's objects appear in the arriving frame:
                # append only (Algorithm 1, lines 18-21).  Connecting subset
                # states to the new principal is the job of the CNPS
                # procedure, which selects at most one candidate per root.
                state.add_frame(frame_id)
                stats.frames_appended += 1
            else:
                target, created = states.get_or_create(inter)
                if created:
                    stats.states_created += 1
                    if not self._keep_new_state(inter):
                        # Proposition 1: keep a terminated marker outside the
                        # graph; it is never traversed, merged or reported.
                        target.terminated = True
                        target.add_frame(frame_id, marked=True)
                        target = None  # type: ignore[assignment]
                elif target.terminated:
                    target = None  # type: ignore[assignment]
                if target is not None:
                    self._register_node(inter)
                    target.merge_from(state, copy_marks=True)
                    target.add_frame(frame_id)
                    stats.frames_appended += 1
                    self._add_edge(key, inter)
                    if created:
                        visited_states.append(target)

            # Push children for traversal (re-read after the edge maintenance
            # above, which may have re-parented some of them).  The child set
            # is not mutated while iterating: graph edits only happen when a
            # state is popped from the stack.
            children = children_map.get(key)
            if children:
                for child_key in children:
                    if child_key not in visited:
                        child = states.get(child_key)
                        if child is not None:
                            stack.append(child)

    def _connect_new_principal(
        self, objects: ObjectSet, candidates: Dict[ObjectSet, None]
    ) -> None:
        """Connect the new principal state to selected candidates (Algorithm 2).

        Candidates are processed in descending object-set size; a candidate is
        skipped when it is a subset of an already-selected one, which both
        keeps Property 2 (no child of the principal contains another) and
        avoids redundant edges.  Reachability of skipped candidates is
        preserved because they are already connected to the graph through the
        source states they were derived from.
        """
        ordered = sorted(candidates, key=len, reverse=True)
        selected: List[ObjectSet] = []
        for candidate in ordered:
            if candidate == objects or self._states.get(candidate) is None:
                continue
            if any(candidate < chosen for chosen in selected):
                continue
            self._add_edge(objects, candidate)
            selected.append(candidate)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(
        self, frame_id: int, oldest_valid: int, visited_states: List[State]
    ) -> ResultStateSet:
        """Combine the carried-over result set with freshly visited states.

        ``SR_{i'} = SR'_i  u  SR_{G'}`` in the paper's notation: states that
        were part of the previous result and are still alive, satisfied and
        valid, plus the satisfied valid states touched by this traversal.
        """
        duration = self.config.duration
        new_results: Dict[ObjectSet, State] = {}

        for object_ids, state in list(self._previous_results.items()):
            if self._states.get(object_ids) is not state:
                continue
            state.expire_before(oldest_valid)
            if state.is_empty or not state.is_valid:
                self._states.remove(state)
                self._remove_node(object_ids)
                self.stats.states_removed += 1
                continue
            if state.is_satisfied(duration):
                new_results[object_ids] = state

        for state in visited_states:
            if self._states.get(state.object_ids) is not state:
                continue
            if state.is_valid and state.is_satisfied(duration):
                new_results[state.object_ids] = state

        self._previous_results = new_results
        result = ResultStateSet(frame_id)
        for state in new_results.values():
            result.add(ResultState(state.object_ids, state.frame_ids))
        return result

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _reset_impl(self) -> None:
        self._states = StateTable()
        self._children = {}
        self._parents = {}
        self._principals = {}
        self._previous_results = {}

    def live_state_count(self) -> int:
        return len(self._states)

    def live_states(self) -> List[State]:
        """Snapshot of the currently maintained states (for tests)."""
        return self._states.states()

    def edges(self) -> List[Tuple[ObjectSet, ObjectSet]]:
        """All ``(parent, child)`` edges of the graph (for tests/diagnostics)."""
        return [
            (parent, child)
            for parent, children in self._children.items()
            for child in children
        ]

    def principal_object_sets(self) -> List[ObjectSet]:
        """Object sets of the current principal states, in arrival order."""
        return list(self._principals)
