"""Run-length encoded sliding-window frame sets.

A state's frame set (Definition 3) is a set of frame ids inside the sliding
window.  Co-occurring objects are observed in *contiguous* stretches of video,
so the frame set is almost always a handful of dense runs — storing it frame
by frame (as the seed implementation's per-frame dict did) makes every merge
and expiry linear in the window size.

:class:`FrameSpan` stores the frame set as sorted, non-adjacent inclusive runs
``[start, end]`` held in two parallel arrays with a logical head index:

* appending the next frame extends the last run in O(1);
* expiry pops whole runs off the front, O(1) amortised per expired frame and
  O(1) flat when nothing expires (the common case);
* merging two spans is at worst a single interval-union pass over the run
  lists, O(runs) instead of O(frames) — and usually far less, see below;
* ``frame_count`` and ``marked_count`` are maintained plain attributes, O(1)
  with no property-call overhead on the hot loops.

Merge memoisation
-----------------
The generators merge the *same* source state into the *same* target on every
frame while a co-occurrence persists.  Every span carries a unique ``serial``
plus three change counters:

* ``revision`` — any change to the frame set (also the cache key for decoded
  snapshots such as :meth:`~repro.core.state.State.to_result`);
* ``mid_revision`` — only changes that add frames *at or before* the current
  tail (merge splices and late inserts; in-order appends and expiry leave it
  untouched);
* ``marks_revision`` — any change to the marked-frame list.

A target remembers ``[revision, mid_revision, last_frame, marks_revision,
marks_mid_revision, last_mark]`` per source serial at merge time.  On the
next merge from the same source:

* unchanged ``revision`` — the union is a provable no-op, skip entirely;
* unchanged ``mid_revision`` — the source only appended (and/or expired)
  since, so only its runs beyond the remembered ``last_frame`` are new;
  splice just those (usually a single frame) instead of re-unioning
  everything;
* otherwise — full interval union.

This is sound because the generators always expire a source to the current
window *before* merging from it: an unchanged revision proves the source's
frames are all still inside the window and were already unioned into the
target, and the target can only have gained frames or dropped frames older
than the window since — so the union result cannot have changed.  Marks are
skipped independently via ``marks_revision``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from itertools import chain, count
from typing import Dict, Iterator, List, Optional, Tuple

#: Compact the backing arrays once this many entries have expired *and* the
#: expired prefix is at least half the array (amortised O(1) per expiry).
_COMPACT_THRESHOLD = 16

#: Global serial numbers for merge memoisation (never reused, unlike ``id``).
_serials = count()


class FrameSpan:
    """A sliding-window frame set as run-length intervals plus marked frames."""

    __slots__ = ("_starts", "_ends", "_head", "_marked", "_mhead",
                 "frame_count", "marked_count",
                 "revision", "mid_revision", "marks_revision",
                 "marks_mid_revision", "serial", "_merge_memo")

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._head = 0
        self._marked: List[int] = []
        self._mhead = 0
        #: Number of frames in the span (maintained, read directly).
        self.frame_count = 0
        #: Number of live marked frames (maintained, read directly).
        self.marked_count = 0
        #: Bumped by every frame-set change.
        self.revision = 0
        #: Bumped only by non-tail frame additions (see module docstring).
        self.mid_revision = 0
        #: Bumped by every marked-frame change.
        self.marks_revision = 0
        #: Bumped only by non-tail mark additions.
        self.marks_mid_revision = 0
        self.serial = next(_serials)
        # Merge memo, one entry per source span this span has merged from:
        #   serial -> [revision, mid_revision, last_frame,
        #              marks_revision|None, marks_mid_revision, last_mark]
        # CANONICAL LAYOUT — the hot loops in naive.py, mfs.py and ssg.py
        # inline the hit test against entry[0]/entry[1]/entry[2]/entry[3]
        # (deliberately: a function call per derivation would dominate the
        # merge itself).  Any change to the layout or to the catch-up
        # soundness conditions must be mirrored at those call sites.
        self._merge_memo: Optional[Dict[int, List]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, frame_id: int, marked: bool = False) -> bool:
        """Add ``frame_id`` to the span (idempotent); optionally mark it.

        Returns ``True`` when the frame was newly added.  The fast paths are
        an in-order append (``frame_id`` beyond the last run) and a duplicate
        of the current tail frame (several sources deriving the same target
        within one window step); anything else takes the bisect path.
        """
        ends = self._ends
        added = False
        if self._head >= len(ends):
            self._starts.append(frame_id)
            ends.append(frame_id)
            self.frame_count += 1
            self.revision += 1
            added = True
        else:
            last = ends[-1]
            if frame_id > last:
                if frame_id == last + 1:
                    ends[-1] = frame_id
                else:
                    self._starts.append(frame_id)
                    ends.append(frame_id)
                self.frame_count += 1
                self.revision += 1
                added = True
            elif frame_id != last and not self.contains(frame_id):
                self._insert(frame_id)
                added = True
        if marked:
            self.mark(frame_id)
        return added

    def _insert(self, frame_id: int) -> None:
        """Slow path: splice a late-arriving frame into the run list."""
        starts, ends, head = self._starts, self._ends, self._head
        # Index of the last run starting at or before frame_id (may be head-1).
        i = bisect_right(starts, frame_id, head) - 1
        if i >= head and frame_id == ends[i] + 1:
            ends[i] = frame_id
            if i + 1 < len(starts) and starts[i + 1] == frame_id + 1:
                # Bridged the gap to the next run: coalesce.
                ends[i] = ends[i + 1]
                del starts[i + 1]
                del ends[i + 1]
        elif i + 1 < len(starts) and starts[i + 1] == frame_id + 1:
            starts[i + 1] = frame_id
        else:
            starts.insert(i + 1, frame_id)
            ends.insert(i + 1, frame_id)
        self.frame_count += 1
        self.revision += 1
        self.mid_revision += 1

    def _union_run(self, run_start: int, run_end: int) -> None:
        """Splice the interval ``[run_start, run_end]`` into the run list."""
        starts, ends, head = self._starts, self._ends, self._head
        n = len(starts)
        if head >= n:
            starts.append(run_start)
            ends.append(run_end)
            self.frame_count += run_end - run_start + 1
            self.revision += 1
            return
        if run_start >= starts[-1]:
            # Touches at most the tail run: the overwhelmingly common splice.
            last_end = ends[-1]
            if run_end <= last_end:
                return  # contained
            if run_start <= last_end + 1:
                # Tail overlap/extension (no mid_revision bump).
                ends[-1] = run_end
                self.frame_count += run_end - last_end
                self.revision += 1
            else:
                # Gap beyond the tail: plain append (no mid_revision bump).
                starts.append(run_start)
                ends.append(run_end)
                self.frame_count += run_end - run_start + 1
                self.revision += 1
            return
        # run_start < starts[-1]: a mid splice.  Find the window of runs
        # overlapping or adjacent to [run_start-1, run_end+1].
        lo = bisect_left(ends, run_start - 1, head)
        hi = bisect_right(starts, run_end + 1) - 1
        if lo > hi:
            # No overlap: fresh run between lo-1 and lo.
            starts.insert(lo, run_start)
            ends.insert(lo, run_end)
            self.frame_count += run_end - run_start + 1
            self.revision += 1
            self.mid_revision += 1
            return
        new_start = min(run_start, starts[lo])
        new_end = max(run_end, ends[hi])
        absorbed = 0
        for k in range(lo, hi + 1):
            absorbed += ends[k] - starts[k] + 1
        added = (new_end - new_start + 1) - absorbed
        if added == 0:
            return  # fully contained: no change at all
        # A pure tail extension (only the last run grew, upward) is not a
        # "mid" change: downstream incremental merges stay valid.
        tail_only = (hi == n - 1 and lo == hi and new_start == starts[lo])
        starts[lo] = new_start
        ends[lo] = new_end
        if hi > lo:
            del starts[lo + 1:hi + 1]
            del ends[lo + 1:hi + 1]
        self.frame_count += added
        self.revision += 1
        if not tail_only:
            self.mid_revision += 1

    def _full_union(self, other: "FrameSpan") -> None:
        """One-pass interval union of ``other``'s live runs into this span.

        O(runs_self + runs_other) regardless of how the runs interleave —
        the right tool for the first-ever merge of a state pair, where the
        whole source span is new to the target.  ``mid_revision`` is bumped
        only when the union added frames at or before the previous tail, so
        downstream incremental merges survive pure tail growth.
        """
        o_starts, o_ends, o_head = other._starts, other._ends, other._head
        o_n = len(o_starts)
        starts, ends, head = self._starts, self._ends, self._head
        n = len(starts)
        # Containment pre-scan (two-pointer, no allocation): most repeat
        # derivations merge a source the target already covers entirely.
        i = head
        for j in range(o_head, o_n):
            run_start = o_starts[j]
            while i < n and ends[i] < run_start:
                i += 1
            if i >= n or starts[i] > run_start or ends[i] < o_ends[j]:
                break
        else:
            return  # every source run is covered: provable no-op
        old_count = self.frame_count
        old_last = ends[-1]
        new_starts: List[int] = []
        new_ends: List[int] = []
        i, j = head, o_head
        cur_start = cur_end = None
        frame_count = 0
        while i < n or j < o_n:
            if j >= o_n or (i < n and starts[i] <= o_starts[j]):
                run_start, run_end = starts[i], ends[i]
                i += 1
            else:
                run_start, run_end = o_starts[j], o_ends[j]
                j += 1
            if cur_start is None:
                cur_start, cur_end = run_start, run_end
            elif run_start <= cur_end + 1:
                if run_end > cur_end:
                    cur_end = run_end
            else:
                new_starts.append(cur_start)
                new_ends.append(cur_end)
                frame_count += cur_end - cur_start + 1
                cur_start, cur_end = run_start, run_end
        new_starts.append(cur_start)
        new_ends.append(cur_end)
        frame_count += cur_end - cur_start + 1
        added = frame_count - old_count
        if added == 0:
            return  # other was already covered: no change, keep caches valid
        self._starts, self._ends, self._head = new_starts, new_ends, 0
        self.frame_count = frame_count
        self.revision += 1
        # Frames the source contributed beyond the old tail; if that accounts
        # for every added frame, the change was tail-only.
        beyond = 0
        for k in range(o_n - 1, o_head - 1, -1):
            if o_ends[k] <= old_last:
                break
            run_start = o_starts[k]
            beyond += o_ends[k] - (run_start if run_start > old_last else old_last + 1) + 1
        if added != beyond:
            self.mid_revision += 1

    def mark(self, frame_id: int) -> None:
        """Mark ``frame_id`` (which must be present) as a key frame."""
        marked, mhead = self._marked, self._mhead
        n = len(marked)
        if mhead >= n or frame_id > marked[-1]:
            marked.append(frame_id)
        else:
            if frame_id == marked[-1]:
                return
            i = bisect_right(marked, frame_id, mhead)
            if i > mhead and marked[i - 1] == frame_id:
                return
            insort(marked, frame_id, mhead)
            self.marks_mid_revision += 1
        self.marked_count += 1
        self.marks_revision += 1

    def expire_before(self, oldest_valid: int) -> None:
        """Drop every frame (and mark) with id smaller than ``oldest_valid``."""
        starts, ends = self._starts, self._ends
        head, n = self._head, len(starts)
        if head >= n or starts[head] >= oldest_valid:
            return
        frame_count = self.frame_count
        while head < n and ends[head] < oldest_valid:
            frame_count -= ends[head] - starts[head] + 1
            head += 1
        if head < n and starts[head] < oldest_valid:
            frame_count -= oldest_valid - starts[head]
            starts[head] = oldest_valid
        self._head = head
        self.frame_count = frame_count
        self.revision += 1
        if head >= _COMPACT_THRESHOLD and head * 2 >= n:
            del starts[:head]
            del ends[:head]
            self._head = 0
        marked, mhead = self._marked, self._mhead
        m = len(marked)
        if mhead < m and marked[mhead] < oldest_valid:
            while mhead < m and marked[mhead] < oldest_valid:
                mhead += 1
            self._mhead = mhead
            self.marked_count = m - mhead
            self.marks_revision += 1
            if mhead >= _COMPACT_THRESHOLD and mhead * 2 >= m:
                del marked[:mhead]
                self._mhead = 0

    def merge(self, other: "FrameSpan", copy_marks: bool = False,
              entry: object = False) -> None:
        """Union ``other``'s frames (and optionally marks) into this span.

        Memoised per source span: a no-op when the source has not changed, an
        incremental tail splice when the source only appended since the last
        merge, and a full O(runs) interval union otherwise (see the module
        docstring for the soundness argument).  Callers must expire ``other``
        to the current window before merging, which every generator's
        maintenance loop already does.

        ``entry`` lets hot callers that already looked up this source's memo
        entry (to skip the call entirely on a hit) pass it in; the sentinel
        ``False`` means "not provided".
        """
        memo = self._merge_memo
        if memo is None:
            memo = self._merge_memo = {}
            entry = None
        elif entry is False:
            entry = memo.get(other.serial)
        if entry is None and len(memo) > 4096:
            # Bound the memo on long-lived spans: dead source serials are
            # never reused, so entries for vanished sources are dead weight.
            # Dropping everything is always safe (absent entry = full merge)
            # and live pairs re-memoise on their next derivation.
            memo.clear()

        o_head = other._head
        o_starts, o_ends = other._starts, other._ends
        o_n = len(o_starts)
        if o_head < o_n:
            if entry is not None and entry[0] == other.revision:
                pass  # source frames unchanged: nothing to union
            elif entry is not None and entry[1] == other.mid_revision:
                # Source only appended (and/or expired) since the last merge:
                # splice just the runs beyond the remembered tail.
                last_merged = entry[2]
                i = bisect_right(o_ends, last_merged, o_head)
                while i < o_n:
                    run_start = o_starts[i]
                    if run_start <= last_merged:
                        run_start = last_merged + 1
                    self._union_run(run_start, o_ends[i])
                    i += 1
            elif self.frame_count == 0:
                # Fresh target: wholesale copy.
                self._starts = o_starts[o_head:]
                self._ends = o_ends[o_head:]
                self._head = 0
                self.frame_count = other.frame_count
                self.revision += 1
                self.mid_revision += 1
            elif o_n - o_head == 1:
                # Single source run: targeted splice.
                self._union_run(o_starts[o_head], o_ends[o_head])
            else:
                self._full_union(other)
        if copy_marks:
            marks_done = entry is not None and entry[3] is not None
            if marks_done and entry[3] == other.marks_revision:
                pass  # source marks unchanged
            elif marks_done and entry[4] == other.marks_mid_revision:
                # Only appended (and/or expired) marks since: add the tail.
                o_marked = other._marked
                i = bisect_right(o_marked, entry[5], other._mhead)
                for k in range(i, len(o_marked)):
                    self.mark(o_marked[k])
            elif self.marked_count == 0 and other.marked_count:
                self._marked = other._marked[other._mhead:]
                self._mhead = 0
                self.marked_count = other.marked_count
                self.marks_revision += 1
                self.marks_mid_revision += 1
            else:
                o_marked = other._marked
                o_mh = other._mhead
                o_m = len(o_marked)
                marked, mh = self._marked, self._mhead
                m = len(marked)
                if o_m - o_mh > 4 and m > mh:
                    # Bulk path (typically the first merge of a pair): a
                    # one-pass sorted union beats per-mark insertion.
                    merged: List[int] = []
                    push = merged.append
                    old_tail = marked[m - 1]
                    mid_added = False
                    i, j = mh, o_mh
                    while i < m or j < o_m:
                        if j >= o_m:
                            push(marked[i]); i += 1
                        elif i >= m:
                            value = o_marked[j]; j += 1
                            if value < old_tail:
                                mid_added = True
                            push(value)
                        elif marked[i] < o_marked[j]:
                            push(marked[i]); i += 1
                        elif o_marked[j] < marked[i]:
                            value = o_marked[j]; j += 1
                            if value < old_tail:
                                mid_added = True
                            push(value)
                        else:
                            push(marked[i]); i += 1; j += 1
                    if len(merged) != m - mh:
                        self._marked = merged
                        self._mhead = 0
                        self.marked_count = len(merged)
                        self.marks_revision += 1
                        if mid_added:
                            self.marks_mid_revision += 1
                else:
                    # Mark by mark: duplicates and tail appends stay cheap
                    # and do not bump marks_mid_revision.
                    mark = self.mark
                    for k in range(o_mh, o_m):
                        mark(o_marked[k])
        last_frame = o_ends[-1] if o_head < o_n else -1
        if entry is not None:
            # Update in place: no list allocation on the repeat-merge path.
            entry[0] = other.revision
            entry[1] = other.mid_revision
            entry[2] = last_frame
            if copy_marks:
                entry[3] = other.marks_revision
                entry[4] = other.marks_mid_revision
                entry[5] = other._marked[-1] if other.marked_count else -1
        elif copy_marks:
            memo[other.serial] = [
                other.revision, other.mid_revision, last_frame,
                other.marks_revision, other.marks_mid_revision,
                other._marked[-1] if other.marked_count else -1,
            ]
        else:
            memo[other.serial] = [
                other.revision, other.mid_revision, last_frame,
                None, 0, -1,
            ]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def export_snapshot(self) -> List[List[int]]:
        """Snapshot the live runs and marks for checkpointing.

        Returns ``[starts, ends, marked]`` with the expired prefix already
        dropped.  Revision counters, serials and merge memos are *not*
        exported: they are pure performance caches whose absence only costs
        one full re-merge per surviving state pair after a restore.
        """
        head = self._head
        return [
            list(self._starts[head:]),
            list(self._ends[head:]),
            list(self._marked[self._mhead:]),
        ]

    @classmethod
    def from_snapshot(cls, snapshot: List[List[int]]) -> "FrameSpan":
        """Rebuild a span from an :meth:`export_snapshot` payload."""
        starts, ends, marked = snapshot
        if len(starts) != len(ends):
            raise ValueError("malformed span snapshot: run bounds differ in length")
        span = cls()
        frame_count = 0
        previous_end = None
        for start, end in zip(starts, ends):
            start, end = int(start), int(end)
            if end < start or (previous_end is not None and start <= previous_end + 1):
                raise ValueError(
                    f"malformed span snapshot: runs not sorted/disjoint at {start}..{end}"
                )
            frame_count += end - start + 1
            previous_end = end
        span._starts = [int(s) for s in starts]
        span._ends = [int(e) for e in ends]
        span.frame_count = frame_count
        span._marked = [int(m) for m in marked]
        span.marked_count = len(span._marked)
        previous_mark = None
        for mark in span._marked:
            if previous_mark is not None and mark <= previous_mark:
                raise ValueError("malformed span snapshot: marks not sorted")
            if not span.contains(mark):
                raise ValueError(
                    f"malformed span snapshot: mark {mark} outside the frame set"
                )
            previous_mark = mark
        return span

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.frame_count == 0

    @property
    def first_frame(self) -> int:
        """Oldest frame id; raises IndexError when empty."""
        return self._starts[self._head]

    @property
    def last_frame(self) -> int:
        """Newest frame id; raises IndexError when empty."""
        return self._ends[-1]

    def contains(self, frame_id: int) -> bool:
        """True when ``frame_id`` is part of the span (O(log runs))."""
        starts, head = self._starts, self._head
        i = bisect_right(starts, frame_id, head) - 1
        return i >= head and frame_id <= self._ends[i]

    def runs(self) -> Tuple[Tuple[int, int], ...]:
        """The live runs as ``(start, end)`` pairs, oldest first."""
        head = self._head
        return tuple(zip(self._starts[head:], self._ends[head:]))

    def runs_key(self) -> Tuple[int, ...]:
        """A cheap hashable canonical key of the frame set (flat run bounds)."""
        head = self._head
        return tuple(self._starts[head:] + self._ends[head:])

    def frame_ids(self) -> Tuple[int, ...]:
        """Decode the span into the tuple of frame ids, oldest first."""
        head = self._head
        return tuple(chain.from_iterable(
            range(s, e + 1)
            for s, e in zip(self._starts[head:], self._ends[head:])
        ))

    def marked_ids(self) -> Tuple[int, ...]:
        """The live marked frame ids, oldest first."""
        return tuple(self._marked[self._mhead:])

    def __iter__(self) -> Iterator[int]:
        return iter(self.frame_ids())

    def __len__(self) -> int:
        return self.frame_count

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        runs = ", ".join(f"{s}..{e}" for s, e in self.runs())
        return f"FrameSpan([{runs}], marked={list(self.marked_ids())})"
