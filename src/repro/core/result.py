"""Result state sets produced by the MCOS generation layer.

The *Result State Set* (Section 4.3.7) contains every state that is both
*satisfied* (its frame set meets the duration threshold ``d``) and *valid*
(its object set is an MCOS of its frame set).  It is the unit of exchange
between MCOS generation and query evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class ResultState:
    """An immutable satisfied, valid state: an MCOS and its frame set."""

    object_ids: FrozenSet[int]
    frame_ids: Tuple[int, ...]

    @property
    def duration(self) -> int:
        """Number of frames in which the MCOS appears."""
        return len(self.frame_ids)

    def class_counts(self, labels: Mapping[int, str]) -> Dict[str, int]:
        """Aggregate the MCOS by class label.

        Parameters
        ----------
        labels:
            Mapping from object id to class label (typically provided by the
            engine, which tracks labels seen in the relation).
        """
        counts: Dict[str, int] = {}
        for oid in self.object_ids:
            label = labels[oid]
            counts[label] = counts.get(label, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        objs = ",".join(str(o) for o in sorted(self.object_ids))
        return f"ResultState({{{objs}}}, frames={list(self.frame_ids)})"


class ResultStateSet:
    """The set of satisfied, valid states of one window.

    Provides set-like access keyed by object set, plus canonical forms used by
    the tests to compare the output of different generators.
    """

    def __init__(self, current_frame_id: int,
                 states: Optional[Iterable[ResultState]] = None):
        self.current_frame_id = current_frame_id
        self._by_object_set: Dict[FrozenSet[int], ResultState] = {}
        for state in states or ():
            self.add(state)

    def add(self, state: ResultState) -> None:
        """Insert a result state, keeping the larger frame set on duplicates."""
        existing = self._by_object_set.get(state.object_ids)
        if existing is None or len(state.frame_ids) > len(existing.frame_ids):
            self._by_object_set[state.object_ids] = state

    def add_unique(self, state: ResultState) -> None:
        """Insert a result state whose object set the caller knows is new.

        Hot-path variant of :meth:`add` used by the generators' report loops,
        which iterate tables keyed by object set and therefore never produce
        duplicates.
        """
        self._by_object_set[state.object_ids] = state

    def __len__(self) -> int:
        return len(self._by_object_set)

    def __iter__(self) -> Iterator[ResultState]:
        return iter(self._by_object_set.values())

    def __contains__(self, object_ids: FrozenSet[int]) -> bool:
        return frozenset(object_ids) in self._by_object_set

    def get(self, object_ids: Iterable[int]) -> Optional[ResultState]:
        """Return the result state for the given object set, if present."""
        return self._by_object_set.get(frozenset(object_ids))

    def object_sets(self) -> List[FrozenSet[int]]:
        """All MCOS object sets in the result."""
        return list(self._by_object_set)

    def as_mapping(self) -> Dict[FrozenSet[int], FrozenSet[int]]:
        """Canonical ``{object set -> frame set}`` mapping.

        Used by tests to compare generators; frame order is irrelevant for
        equality, hence frozensets.
        """
        return {
            oids: frozenset(state.frame_ids)
            for oids, state in self._by_object_set.items()
        }

    def canonical(self) -> FrozenSet[Tuple[FrozenSet[int], FrozenSet[int]]]:
        """A hashable canonical form of the result set."""
        return frozenset(
            (oids, frozenset(state.frame_ids))
            for oids, state in self._by_object_set.items()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultStateSet):
            return NotImplemented
        return self.as_mapping() == other.as_mapping()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ResultStateSet(frame={self.current_frame_id}, "
            f"states={len(self._by_object_set)})"
        )
