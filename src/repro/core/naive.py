"""The NAIVE baseline for MCOS generation (Section 6.2).

The baseline follows the "first attempt" state maintenance of Section 4.2.2:
every arriving frame is intersected with every existing state, new states are
created for previously unseen intersections, and states are only discarded
once every frame of their frame set has expired.  No marking is performed, so
invalid states (object sets that are no longer maximal) linger in the state
table; they are filtered out at report time by grouping states that share the
same frame set and keeping only the largest object set, exactly as described
for the NAIVE method in the experimental section.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.core.base import MCOSGenerator
from repro.core.result import ResultState, ResultStateSet
from repro.core.state import State, StateTable
from repro.datamodel.observation import FrameObservation


class NaiveGenerator(MCOSGenerator):
    """Baseline generator: keep everything, deduplicate when reporting."""

    name = "NAIVE"

    def __init__(self, window_size: int, duration: int, **kwargs):
        super().__init__(window_size, duration, **kwargs)
        self._states = StateTable()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _process(self, frame: FrameObservation) -> ResultStateSet:
        oldest_valid = self._oldest_valid_frame(frame.frame_id)
        self._expire(oldest_valid)

        objects = frame.object_ids
        if objects:
            self._integrate_frame(frame.frame_id, objects)

        self._track_live_states(len(self._states))
        return self._report(frame.frame_id)

    def _expire(self, oldest_valid: int) -> None:
        """Remove expired frames; drop states whose frame set became empty."""
        for state in self._states.states():
            state.expire_before(oldest_valid)
            if state.is_empty:
                self._states.remove(state)
                self.stats.states_removed += 1

    def _integrate_frame(self, frame_id: int, objects: FrozenSet[int]) -> None:
        """Intersect the new frame with every existing state (Section 4.2.2)."""
        existing = self._states.states()
        for state in existing:
            if state.terminated:
                continue
            self.stats.state_visits += 1
            self.stats.intersections += 1
            inter = state.object_ids & objects
            if not inter:
                continue
            target, created = self._states.get_or_create(inter)
            if created:
                self.stats.states_created += 1
                if not self._keep_new_state(inter):
                    # Proposition 1: the state (and every state derivable from
                    # it) can never satisfy a query; keep it as a terminated
                    # marker so it is not re-created, but stop processing it.
                    target.terminated = True
                    target.add_frame(frame_id)
                    continue
            if target.terminated:
                continue
            target.merge_from(state, copy_marks=False)
            target.add_frame(frame_id)
            self.stats.frames_appended += 1

        # The arriving frame itself always yields a (principal) state.
        principal, created = self._states.get_or_create(objects)
        if created:
            self.stats.states_created += 1
            if not self._keep_new_state(objects):
                principal.terminated = True
                principal.add_frame(frame_id)
                return
        if principal.terminated:
            return
        principal.add_frame(frame_id)
        self.stats.frames_appended += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, frame_id: int) -> ResultStateSet:
        """Deduplicate satisfied states that share a frame set (keep the largest)."""
        duration = self.config.duration
        best_by_frames: Dict[FrozenSet[int], State] = {}
        for state in self._states:
            if state.terminated or not state.is_satisfied(duration):
                continue
            key = frozenset(state.frame_ids)
            incumbent = best_by_frames.get(key)
            if incumbent is None or len(state.object_ids) > len(incumbent.object_ids):
                best_by_frames[key] = state

        result = ResultStateSet(frame_id)
        for state in best_by_frames.values():
            result.add(ResultState(state.object_ids, state.frame_ids))
        return result

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _reset_impl(self) -> None:
        self._states = StateTable()

    def live_state_count(self) -> int:
        return len(self._states)

    def live_states(self) -> List[State]:
        """Snapshot of the currently maintained states (for tests)."""
        return self._states.states()
