"""The NAIVE baseline for MCOS generation (Section 6.2).

The baseline follows the "first attempt" state maintenance of Section 4.2.2:
every arriving frame is intersected with every existing state, new states are
created for previously unseen intersections, and states are only discarded
once every frame of their frame set has expired.  No marking is performed, so
invalid states (object sets that are no longer maximal) linger in the state
table; they are filtered out at report time by grouping states that share the
same frame set and keeping only the largest object set, exactly as described
for the NAIVE method in the experimental section.

All object sets are ``int`` bitmasks over the generator's shared
:class:`~repro.core.interning.ObjectInterner`; intersections and table lookups
never touch frozensets.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.base import MCOSGenerator
from repro.core.result import ResultStateSet
from repro.core.state import State, StateTable
from repro.datamodel.observation import FrameObservation


class NaiveGenerator(MCOSGenerator):
    """Baseline generator: keep everything, deduplicate when reporting."""

    name = "NAIVE"

    def __init__(self, window_size: int, duration: int, **kwargs):
        super().__init__(window_size, duration, **kwargs)
        self._states = StateTable(self.interner)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _process(self, frame: FrameObservation, frame_bits: int) -> ResultStateSet:
        oldest_valid = self._oldest_valid_frame(frame.frame_id)
        self._expire(oldest_valid)

        if frame_bits:
            self._integrate_frame(frame.frame_id, frame_bits)

        self._track_live_states(len(self._states))
        return self._report(frame.frame_id)

    def _expire(self, oldest_valid: int) -> None:
        """Remove expired frames; drop states whose frame set became empty."""
        for state in self._states.states():
            span = state.span
            starts = span._starts
            head = span._head
            if head < len(starts) and starts[head] < oldest_valid:
                if span._ends[head] >= oldest_valid:
                    # Inlined fast path: the slide trims the first run only.
                    span.frame_count -= oldest_valid - starts[head]
                    starts[head] = oldest_valid
                    span.revision += 1
                else:
                    span.expire_before(oldest_valid)
                    if span.frame_count == 0:
                        self._states.remove(state)
                        self.stats.states_removed += 1

    def _integrate_frame(self, frame_id: int, frame_bits: int) -> None:
        """Intersect the new frame with every existing state (Section 4.2.2)."""
        states = self._states
        stats = self.stats
        existing = states.states()
        visits = 0
        appended = 0
        for state in existing:
            if state.terminated:
                continue
            visits += 1
            inter = state.bits & frame_bits
            if not inter:
                continue
            target, created = states.get_or_create(inter)
            if created:
                stats.states_created += 1
                if not self._keep_new_state(inter):
                    # Proposition 1: the state (and every state derivable from
                    # it) can never satisfy a query; keep it as a terminated
                    # marker so it is not re-created, but stop processing it.
                    target.terminated = True
                    target.add_frame(frame_id)
                    continue
            if target.terminated:
                continue
            span = state.span
            tspan = target.span
            # Inlined merge-memo hit check (unchanged source: no-op merge).
            memo = tspan._merge_memo
            entry = memo.get(span.serial) if memo is not None else None
            if entry is not None and entry[0] == span.revision:
                pass  # source unchanged: provable no-op
            elif (entry is not None
                    and entry[1] == span.mid_revision
                    and span._ends[-1] <= tspan._ends[-1]
                    and tspan._starts[-1] <= entry[2] + 1):
                # New source frames all lie inside the target's tail run.
                entry[0] = span.revision
                entry[2] = span._ends[-1]
            else:
                tspan.merge(span, False, entry)
            t_ends = tspan._ends
            last = t_ends[-1]
            if last == frame_id - 1:
                t_ends[-1] = frame_id
                tspan.frame_count += 1
                tspan.revision += 1
            elif last != frame_id:
                tspan.append(frame_id)
            appended += 1
        stats.state_visits += visits
        stats.intersections += visits
        stats.frames_appended += appended

        # The arriving frame itself always yields a (principal) state.
        principal, created = states.get_or_create(frame_bits)
        if created:
            stats.states_created += 1
            if not self._keep_new_state(frame_bits):
                principal.terminated = True
                principal.add_frame(frame_id)
                return
        if principal.terminated:
            return
        principal.add_frame(frame_id)
        stats.frames_appended += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, frame_id: int) -> ResultStateSet:
        """Deduplicate satisfied states that share a frame set (keep the largest)."""
        duration = self.config.duration
        best_by_frames: Dict[Tuple[int, ...], State] = {}
        for state in self._states:
            if state.terminated or state.span.frame_count < duration:
                continue
            # The run bounds are a canonical form of the frame set: a far
            # cheaper grouping key than a frozenset of all frame ids.
            key = state.span.runs_key()
            incumbent = best_by_frames.get(key)
            if incumbent is None or state.size > incumbent.size:
                best_by_frames[key] = state

        result = ResultStateSet(frame_id)
        for state in best_by_frames.values():
            result.add(state.to_result())
        return result

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _reset_impl(self) -> None:
        self._states = StateTable(self.interner)

    def live_state_count(self) -> int:
        return len(self._states)

    def live_states(self) -> List[State]:
        """Snapshot of the currently maintained states (for tests)."""
        return self._states.states()

    def _live_mask(self) -> int:
        return self._states.live_mask()

    def _export_impl(self) -> Dict:
        return {"states": self._states.export_states()}

    def _import_impl(self, payload: Dict) -> None:
        self._states.import_states(payload["states"])
