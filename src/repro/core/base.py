"""Common interface and instrumentation for MCOS generators.

Every generator consumes a stream of :class:`~repro.datamodel.observation.FrameObservation`
objects, maintains states over a sliding window of ``window_size`` frames and,
after each frame, reports the :class:`~repro.core.result.ResultStateSet` of
satisfied, valid states (those with at least ``duration`` frames).

Generators optionally apply two query-driven optimisations described in the
paper:

* *label projection* (Section 3) -- objects whose class is not requested by
  any query are dropped on entry;
* *result-driven pruning* (Section 5.3) -- a ``state_filter`` callback can mark
  freshly created states as terminated when their MCOS cannot satisfy any
  registered >=-only query.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Set

from repro.core.interning import ObjectInterner
from repro.core.result import ResultState, ResultStateSet
from repro.core.state import State
from repro.datamodel.observation import FrameObservation
from repro.datamodel.relation import VideoRelation

#: Callback deciding whether a freshly created state should be terminated.
#: Receives the object set of the new state and returns ``True`` to keep it,
#: ``False`` to terminate it (Proposition 1).
StateFilter = Callable[[FrozenSet[int], Dict[str, int]], bool]


@dataclass
class GeneratorStats:
    """Work counters collected during state maintenance.

    Wall-clock time in Python is noisy; these counters provide a deterministic
    measure of the amount of work each approach performs and are reported by
    the benchmark harness alongside the timings.
    """

    frames_processed: int = 0
    states_created: int = 0
    states_removed: int = 0
    states_terminated: int = 0
    state_visits: int = 0
    intersections: int = 0
    frames_appended: int = 0
    max_live_states: int = 0
    result_states_emitted: int = 0
    edges_added: int = 0
    edges_removed: int = 0

    def merge(self, other: "GeneratorStats") -> "GeneratorStats":
        """Return the field-wise sum of two counter sets."""
        merged = GeneratorStats()
        for name in self.__dataclass_fields__:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.max_live_states = max(self.max_live_states, other.max_live_states)
        return merged

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


@dataclass
class GeneratorConfig:
    """Configuration shared by all MCOS generators.

    Attributes
    ----------
    window_size:
        Sliding window size ``w`` in frames.
    duration:
        Duration threshold ``d`` in frames; a state is *satisfied* when its
        frame set holds at least ``d`` frames.  Must satisfy ``0 <= d <= w``.
    labels_of_interest:
        Optional set of class labels requested by the query workload.  Objects
        of other classes are dropped before state maintenance.
    """

    window_size: int
    duration: int
    labels_of_interest: Optional[Set[str]] = field(default=None)

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if not 0 <= self.duration <= self.window_size:
            raise ValueError("duration must satisfy 0 <= d <= window_size")


class MCOSGenerator(abc.ABC):
    """Abstract base class of the MCOS generation strategies."""

    #: Short name used by the experiment harness (e.g. ``"MFS"``).
    name: str = "abstract"

    def __init__(
        self,
        window_size: int,
        duration: int,
        labels_of_interest: Optional[Iterable[str]] = None,
        state_filter: Optional[StateFilter] = None,
        label_lookup: Optional[Dict[int, str]] = None,
        interner: Optional[ObjectInterner] = None,
    ):
        labels = set(labels_of_interest) if labels_of_interest is not None else None
        self.config = GeneratorConfig(window_size, duration, labels)
        self.stats = GeneratorStats()
        #: Shared object-id interner: every object set the generator touches
        #: is an ``int`` bitmask over this interner's bit positions.  The
        #: engine passes one in so it survives generator resets (masks stay
        #: narrow across restarts thanks to id recycling).
        self.interner: ObjectInterner = interner if interner is not None else ObjectInterner()
        self._state_filter = state_filter  # repro-lint: disable=CKPT-DRIFT -- caller-supplied callable; restoring code re-installs it (documented in import_state)
        #: Mapping from object id to class label, needed only when a state
        #: filter is installed (the filter receives per-class counts).
        self._label_lookup: Dict[int, str] = dict(label_lookup or {})
        self._last_frame_id: Optional[int] = None
        #: Recycle interner bit positions every this many frames, so masks
        #: stay as narrow as the window population instead of growing with
        #: the total number of objects ever seen (every mask operation is a
        #: Python big-int op whose cost scales with mask width).  A few
        #: windows amortise the compaction scan while keeping mask width
        #: bounded by the recent population.
        self._compact_every: int = 4 * window_size  # repro-lint: disable=CKPT-DRIFT -- derived from window_size, which round-trips via the config

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def window_size(self) -> int:
        """The sliding window size ``w``."""
        return self.config.window_size

    @property
    def duration(self) -> int:
        """The duration threshold ``d``."""
        return self.config.duration

    def process_frame(self, frame: FrameObservation) -> ResultStateSet:
        """Advance the window by one frame and return the result state set."""
        if self._last_frame_id is not None and frame.frame_id <= self._last_frame_id:
            raise ValueError(
                f"frames must arrive in increasing order; got {frame.frame_id} "
                f"after {self._last_frame_id}"
            )
        self._last_frame_id = frame.frame_id
        projected = frame.restricted_to_labels(self.config.labels_of_interest)
        if self._state_filter is not None or self.config.labels_of_interest is not None:
            for oid in projected.object_ids:
                self._label_lookup.setdefault(oid, projected.label_of(oid))
        self.stats.frames_processed += 1
        if self.stats.frames_processed % self._compact_every == 0:
            self.compact_interner()
        frame_bits = self.interner.intern_ids(projected.object_ids)
        result = self._process(projected, frame_bits)
        self.stats.result_states_emitted += len(result)
        return result

    def process_relation(self, relation: VideoRelation) -> Iterator[ResultStateSet]:
        """Process every frame of a relation, yielding one result per frame."""
        for frame in relation.frames():
            yield self.process_frame(frame)

    def run(self, relation: VideoRelation) -> "GeneratorRun":
        """Process an entire relation and return an aggregated run summary."""
        per_frame = []
        total_results = 0
        for result in self.process_relation(relation):
            per_frame.append(result)
            total_results += len(result)
        return GeneratorRun(self.name, per_frame, total_results, self.stats)

    def reset(self) -> None:
        """Discard all maintained states and counters.

        The interner is retained (and compacted) rather than replaced: masks
        produced before and after a reset stay mutually compatible, which is
        what lets an engine reuse one interner across many runs.
        """
        self.stats = GeneratorStats()
        self._last_frame_id = None
        self._label_lookup = {}
        self._reset_impl()
        self.compact_interner()

    def set_labels_of_interest(self, labels: Optional[Iterable[str]]) -> None:
        """Re-target the label projection mid-stream (live query lifecycle).

        Label projection is applied per frame at ingest, so changing the set
        only affects frames processed *after* this call: states already in
        the window were built from the old projection and converge to the
        new one as the window slides past the change point (one full window,
        the warm-up watermark documented by the session layer).
        """
        self.config.labels_of_interest = (
            set(labels) if labels is not None else None
        )

    def compact_interner(self) -> int:
        """Recycle interner bit positions not referenced by any live state.

        Safe to call between frames on a long-running stream; returns the
        number of bit positions freed.  See
        :meth:`repro.core.interning.ObjectInterner.compact`.

        The label lookup is pruned alongside: labels are only ever consulted
        for objects of live states (all interned), so entries for departed
        ids are dead weight that would otherwise grow with the total number
        of objects the stream ever produced.
        """
        freed = self.interner.compact(self._live_mask())
        if freed and self._label_lookup:
            interner = self.interner
            self._label_lookup = {
                oid: label
                for oid, label in self._label_lookup.items()
                if oid in interner
            }
        return freed

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def export_checkpoint(self) -> Dict:
        """Snapshot the full generator state between frames.

        The snapshot is a JSON-serialisable dict that, imported into a
        freshly constructed generator of the same class and configuration
        (:meth:`import_checkpoint`), resumes the stream with byte-identical
        results.  Performance caches (merge memos, edge memos, decoded-result
        caches) are deliberately excluded: they rebuild on the fly and never
        influence results.  Must only be called between frames (never from a
        ``state_filter`` callback mid-maintenance).
        """
        labels = self.config.labels_of_interest
        return {
            "method": self.name,
            "window_size": self.config.window_size,
            "duration": self.config.duration,
            "labels_of_interest": sorted(labels) if labels is not None else None,
            "last_frame_id": self._last_frame_id,
            "label_lookup": [
                [oid, label] for oid, label in self._label_lookup.items()
            ],
            "stats": self.stats.as_dict(),
            "interner": self.interner.export_table(),
            "state": self._export_impl(),
        }

    def import_checkpoint(self, payload: Dict) -> None:
        """Restore the generator (in place) from an :meth:`export_checkpoint` dict.

        The receiving generator must have the same method name, window size,
        duration and label projection as the checkpointed one; anything else
        would silently change semantics, so a mismatch raises ``ValueError``.
        (A ``state_filter`` callback cannot be compared and remains the
        caller's responsibility — the engine layer pins it via its own
        ``enable_pruning`` config check.)
        """
        if payload.get("method") != self.name:
            raise ValueError(
                f"checkpoint was taken from method {payload.get('method')!r}, "
                f"cannot import into {self.name!r}"
            )
        if (payload.get("window_size") != self.config.window_size
                or payload.get("duration") != self.config.duration):
            raise ValueError(
                "checkpoint window/duration "
                f"({payload.get('window_size')}, {payload.get('duration')}) do "
                f"not match the generator's "
                f"({self.config.window_size}, {self.config.duration})"
            )
        labels = self.config.labels_of_interest
        own_labels = sorted(labels) if labels is not None else None
        ckpt_labels = payload.get("labels_of_interest")
        ckpt_labels = sorted(ckpt_labels) if ckpt_labels is not None else None
        if ckpt_labels != own_labels:
            raise ValueError(
                f"checkpoint label projection {ckpt_labels} does not match "
                f"the generator's {own_labels}; resuming would project frames "
                "onto the wrong class set"
            )
        self._reset_impl()
        self.interner.restore_table(payload["interner"])
        self.stats = GeneratorStats(**payload["stats"])
        last = payload.get("last_frame_id")
        self._last_frame_id = int(last) if last is not None else None
        self._label_lookup = {
            int(oid): label for oid, label in payload.get("label_lookup", [])
        }
        self._import_impl(payload["state"])

    def export_state(self) -> bytes:
        """The :meth:`export_checkpoint` snapshot as compact checkpoint bytes.

        Uses the streaming checkpoint codec's current (compact binary)
        version — the form the multiprocess worker pool ships over queues
        and the periodic-snapshot path writes.  :meth:`import_state` accepts
        any supported version.
        """
        # Imported lazily: repro.streaming.checkpoint has no dependencies on
        # repro.core, but importing it at module scope here would pull the
        # streaming package (and through it the engine) into every core
        # import, creating a cycle.
        from repro.streaming.checkpoint import to_bytes

        return to_bytes("generator", self.export_checkpoint())

    def import_state(self, data: bytes) -> None:
        """Restore the generator from :meth:`export_state` bytes (any version)."""
        from repro.streaming.checkpoint import from_bytes

        self.import_checkpoint(from_bytes(data, expect_kind="generator"))

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _process(self, frame: FrameObservation, frame_bits: int) -> ResultStateSet:
        """Strategy-specific maintenance for one (projected) frame.

        ``frame_bits`` is the frame's object set interned through
        :attr:`interner` (the representation the hot path works on).
        """

    @abc.abstractmethod
    def _reset_impl(self) -> None:
        """Strategy-specific reset."""

    @abc.abstractmethod
    def live_state_count(self) -> int:
        """Number of states currently maintained (for diagnostics/tests)."""

    @abc.abstractmethod
    def _export_impl(self) -> Dict:
        """Strategy-specific checkpoint payload (tables, graphs, windows)."""

    @abc.abstractmethod
    def _import_impl(self, payload: Dict) -> None:
        """Restore the strategy-specific state from ``_export_impl`` output."""

    def _live_mask(self) -> int:
        """Union of every retained mask (overridden by stateful generators)."""
        return 0

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _oldest_valid_frame(self, current_frame_id: int) -> int:
        """First frame id that is still inside the window ending at ``current_frame_id``."""
        return current_frame_id - self.config.window_size + 1

    def _keep_new_state(self, bits: int) -> bool:
        """Apply the Proposition-1 state filter to a freshly created state.

        The filter operates at the query boundary, so the bitmask is decoded
        back into object ids here (only when a filter is installed).
        """
        if self._state_filter is None:
            return True
        object_ids = self.interner.decode(bits)
        counts: Dict[str, int] = {}
        for oid in object_ids:
            label = self._label_lookup.get(oid)
            if label is None:
                continue
            counts[label] = counts.get(label, 0) + 1
        keep = self._state_filter(object_ids, counts)
        if not keep:
            self.stats.states_terminated += 1
        return keep

    def _result_from_state(self, state: State) -> ResultState:
        """Convert a live state into an immutable result record."""
        return state.to_result()

    def _track_live_states(self, count: int) -> None:
        """Update the maximum-live-states counter."""
        if count > self.stats.max_live_states:
            self.stats.max_live_states = count


@dataclass
class GeneratorRun:
    """Aggregated outcome of processing a full relation with one generator."""

    generator_name: str
    per_frame_results: list
    total_result_states: int
    stats: GeneratorStats
    _result_index: Optional[Dict[int, ResultStateSet]] = field(
        default=None, repr=False, compare=False
    )

    def result_at(self, frame_id: int) -> ResultStateSet:
        """Result state set reported after processing frame ``frame_id``.

        Results are looked up by the frame id each result was reported for,
        so relations whose frame ids start at a nonzero offset (or skip ids)
        resolve correctly.
        """
        index = self._result_index
        if index is None or len(index) != len(self.per_frame_results):
            index = {
                result.current_frame_id: result
                for result in self.per_frame_results
            }
            self._result_index = index
        try:
            return index[frame_id]
        except KeyError:
            raise KeyError(
                f"no result was reported for frame {frame_id}"
            ) from None
