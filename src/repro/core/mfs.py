"""The Marked Frame Set (MFS) approach (Section 4.2).

MFS maintains the same collection of states as the NAIVE baseline but marks
*key frames* in each state's frame set.  A state whose marked frames have all
expired is guaranteed to be invalid (its object set is no longer a Maximum
Co-occurrence Object Set) and is removed immediately, which both shrinks the
state table and removes the need for frame-set deduplication when reporting.

Marking semantics
-----------------
The paper's Frame Marking Rules are under-specified for states that can be
derived from several sources; we use the following semantics (which
reproduces the worked example of Table 2 and is verified against the exact
reference oracle by the property-based tests):

* the state whose object set equals the arriving frame's object set (the
  *principal* state) marks the arriving frame id;
* whenever the intersection of an existing state ``s`` with the arriving
  frame equals the object set of a state ``t`` (existing or newly created),
  ``t`` inherits every marked frame of ``s``.

Both rules preserve the invariant that a marked frame ``m`` certifies a set of
window frames, all no older than ``m``, whose object sets intersect exactly to
the state's object set -- hence "at least one marked frame present" is
equivalent to the state being a valid MCOS.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.core.base import MCOSGenerator
from repro.core.result import ResultState, ResultStateSet
from repro.core.state import State, StateTable
from repro.datamodel.observation import FrameObservation


class MarkedFrameSetGenerator(MCOSGenerator):
    """MCOS generator using Marked Frame Sets for eager invalid-state removal."""

    name = "MFS"

    def __init__(self, window_size: int, duration: int, **kwargs):
        super().__init__(window_size, duration, **kwargs)
        self._states = StateTable()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _process(self, frame: FrameObservation) -> ResultStateSet:
        oldest_valid = self._oldest_valid_frame(frame.frame_id)
        self._expire(oldest_valid)

        objects = frame.object_ids
        if objects:
            self._integrate_frame(frame.frame_id, objects)

        self._track_live_states(len(self._states))
        return self._report(frame.frame_id)

    def _expire(self, oldest_valid: int) -> None:
        """Expire frames; remove states that lost all frames or all marks."""
        for state in self._states.states():
            state.expire_before(oldest_valid)
            if state.is_empty or not state.is_valid:
                self._states.remove(state)
                self.stats.states_removed += 1

    def _integrate_frame(self, frame_id: int, objects: FrozenSet[int]) -> None:
        """Intersect the new frame with every existing state, marking key frames."""
        existing = self._states.states()
        for state in existing:
            if state.terminated:
                continue
            self.stats.state_visits += 1
            self.stats.intersections += 1
            inter = state.object_ids & objects
            if not inter:
                continue
            if inter == state.object_ids:
                # The state's objects all appear in the new frame: append only.
                state.add_frame(frame_id)
                self.stats.frames_appended += 1
                continue
            target, created = self._states.get_or_create(inter)
            if created:
                self.stats.states_created += 1
                if not self._keep_new_state(inter):
                    # Proposition 1: keep a terminated marker so the state is
                    # not repeatedly re-created, but never process it again.
                    target.terminated = True
                    target.add_frame(frame_id, marked=True)
                    continue
            if target.terminated:
                continue
            # The target inherits the source's frames and marked frames
            # (Frame Marking Rule 2), plus the arriving frame (unmarked).
            target.merge_from(state, copy_marks=True)
            target.add_frame(frame_id)
            self.stats.frames_appended += 1

        principal, created = self._states.get_or_create(objects)
        if created:
            self.stats.states_created += 1
            if not self._keep_new_state(objects):
                principal.terminated = True
                principal.add_frame(frame_id, marked=True)
                return
        if principal.terminated:
            return
        # Frame Marking Rule 1: the frame that creates a principal state is a
        # key frame of that state.
        principal.add_frame(frame_id, marked=True)
        self.stats.frames_appended += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, frame_id: int) -> ResultStateSet:
        """Report every satisfied, valid state; no deduplication is required."""
        duration = self.config.duration
        result = ResultStateSet(frame_id)
        for state in self._states:
            if state.terminated:
                continue
            if state.is_valid and state.is_satisfied(duration):
                result.add(ResultState(state.object_ids, state.frame_ids))
        return result

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _reset_impl(self) -> None:
        self._states = StateTable()

    def live_state_count(self) -> int:
        return len(self._states)

    def live_states(self) -> List[State]:
        """Snapshot of the currently maintained states (for tests)."""
        return self._states.states()
