"""The Marked Frame Set (MFS) approach (Section 4.2).

MFS maintains the same collection of states as the NAIVE baseline but marks
*key frames* in each state's frame set.  A state whose marked frames have all
expired is guaranteed to be invalid (its object set is no longer a Maximum
Co-occurrence Object Set) and is removed immediately, which both shrinks the
state table and removes the need for frame-set deduplication when reporting.

Marking semantics
-----------------
The paper's Frame Marking Rules are under-specified for states that can be
derived from several sources; we use the following semantics (which
reproduces the worked example of Table 2 and is verified against the exact
reference oracle by the property-based tests):

* the state whose object set equals the arriving frame's object set (the
  *principal* state) marks the arriving frame id;
* whenever the intersection of an existing state ``s`` with the arriving
  frame equals the object set of a state ``t`` (existing or newly created),
  ``t`` inherits every marked frame of ``s``.

Both rules preserve the invariant that a marked frame ``m`` certifies a set of
window frames, all no older than ``m``, whose object sets intersect exactly to
the state's object set -- hence "at least one marked frame present" is
equivalent to the state being a valid MCOS.

All object sets are ``int`` bitmasks over the generator's shared
:class:`~repro.core.interning.ObjectInterner`; frame sets are run-length
:class:`~repro.core.framespan.FrameSpan` intervals, so per-frame intersection
is a single ``&`` and state merging is O(runs).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.base import MCOSGenerator
from repro.core.result import ResultStateSet
from repro.core.state import State, StateTable
from repro.datamodel.observation import FrameObservation


class MarkedFrameSetGenerator(MCOSGenerator):
    """MCOS generator using Marked Frame Sets for eager invalid-state removal."""

    name = "MFS"

    def __init__(self, window_size: int, duration: int, **kwargs):
        super().__init__(window_size, duration, **kwargs)
        self._states = StateTable(self.interner)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _process(self, frame: FrameObservation, frame_bits: int) -> ResultStateSet:
        oldest_valid = self._oldest_valid_frame(frame.frame_id)
        self._expire(oldest_valid)

        if frame_bits:
            self._integrate_frame(frame.frame_id, frame_bits)

        self._track_live_states(len(self._states))
        return self._report(frame.frame_id)

    def _expire(self, oldest_valid: int) -> None:
        """Expire frames; remove states that lost all frames or all marks."""
        for state in self._states.states():
            span = state.span
            starts = span._starts
            head = span._head
            if head < len(starts):
                first = starts[head]
                if first < oldest_valid:
                    # Inlined fast path: the slide trims the first run only
                    # and expires no marks (see the SSG traversal).
                    marked = span._marked
                    mhead = span._mhead
                    if (span._ends[head] >= oldest_valid
                            and (mhead >= len(marked)
                                 or marked[mhead] >= oldest_valid)):
                        span.frame_count -= oldest_valid - first
                        starts[head] = oldest_valid
                        span.revision += 1
                    else:
                        span.expire_before(oldest_valid)
            if span.marked_count == 0:
                # Covers the empty span too: marks are a subset of frames.
                self._states.remove(state)
                self.stats.states_removed += 1

    def _integrate_frame(self, frame_id: int, frame_bits: int) -> None:
        """Intersect the new frame with every existing state, marking key frames."""
        states = self._states
        stats = self.stats
        existing = states.states()
        visits = 0
        appended = 0
        for state in existing:
            if state.terminated:
                continue
            visits += 1
            state_bits = state.bits
            inter = state_bits & frame_bits
            if not inter:
                continue
            span = state.span
            if inter == state_bits:
                # The state's objects all appear in the new frame: append
                # only.  Inlined FrameSpan.append fast paths (extend tail /
                # duplicate tail) cover almost every call.
                sp_ends = span._ends
                last = sp_ends[-1]
                if last == frame_id - 1:
                    sp_ends[-1] = frame_id
                    span.frame_count += 1
                    span.revision += 1
                elif last != frame_id:
                    span.append(frame_id)
                appended += 1
                continue
            target, created = states.get_or_create(inter)
            if created:
                stats.states_created += 1
                if not self._keep_new_state(inter):
                    # Proposition 1: keep a terminated marker so the state is
                    # not repeatedly re-created, but never process it again.
                    target.terminated = True
                    target.add_frame(frame_id, marked=True)
                    continue
            if target.terminated:
                continue
            # The target inherits the source's frames and marked frames
            # (Frame Marking Rule 2), plus the arriving frame (unmarked).
            # Inlined merge-memo hit check (unchanged source: no-op merge).
            tspan = target.span
            memo = tspan._merge_memo
            entry = memo.get(span.serial) if memo is not None else None
            if entry is not None and entry[0] == span.revision \
                    and entry[3] == span.marks_revision:
                pass  # source unchanged: provable no-op
            elif (entry is not None
                    and entry[1] == span.mid_revision
                    and entry[3] == span.marks_revision
                    and span._ends[-1] <= tspan._ends[-1]
                    and tspan._starts[-1] <= entry[2] + 1):
                # Source only appended frames since the last merge and they
                # all lie inside the target's tail run: record the catch-up
                # without touching either span.
                entry[0] = span.revision
                entry[2] = span._ends[-1]
            else:
                tspan.merge(span, True, entry)
            t_ends = tspan._ends
            last = t_ends[-1]
            if last == frame_id - 1:
                t_ends[-1] = frame_id
                tspan.frame_count += 1
                tspan.revision += 1
            elif last != frame_id:
                tspan.append(frame_id)
            appended += 1
        stats.state_visits += visits
        stats.intersections += visits
        stats.frames_appended += appended

        principal, created = states.get_or_create(frame_bits)
        if created:
            stats.states_created += 1
            if not self._keep_new_state(frame_bits):
                principal.terminated = True
                principal.add_frame(frame_id, marked=True)
                return
        if principal.terminated:
            return
        # Frame Marking Rule 1: the frame that creates a principal state is a
        # key frame of that state.
        principal.span.append(frame_id, marked=True)
        stats.frames_appended += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, frame_id: int) -> ResultStateSet:
        """Report every satisfied, valid state; no deduplication is required."""
        duration = self.config.duration
        result = ResultStateSet(frame_id)
        add = result.add_unique
        for state in self._states:
            if state.terminated:
                continue
            span = state.span
            if span.marked_count > 0 and span.frame_count >= duration:
                add(state.to_result())
        return result

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _reset_impl(self) -> None:
        self._states = StateTable(self.interner)

    def live_state_count(self) -> int:
        return len(self._states)

    def live_states(self) -> List[State]:
        """Snapshot of the currently maintained states (for tests)."""
        return self._states.states()

    def _live_mask(self) -> int:
        return self._states.live_mask()

    def _export_impl(self) -> Dict:
        return {"states": self._states.export_states()}

    def _import_impl(self, payload: Dict) -> None:
        self._states.import_states(payload["states"])
