"""MCOS generation: the paper's primary contribution.

This package implements the *MCOS Generation* layer of the architecture
(Figure 2): incremental maintenance of Maximum Co-occurrence Object Sets over
a sliding window of frames.

Three maintenance strategies are provided, matching Section 4 and the
experimental baselines of Section 6:

* :class:`~repro.core.naive.NaiveGenerator` -- the NAIVE baseline that keeps
  every state and deduplicates by frame set at report time.
* :class:`~repro.core.mfs.MarkedFrameSetGenerator` -- the MFS approach that
  marks key frames and removes invalid states eagerly.
* :class:`~repro.core.ssg.StrictStateGraphGenerator` -- the SSG approach that
  additionally organises states in a graph to prune traversal work.

:class:`~repro.core.reference.ReferenceGenerator` recomputes the exact answer
per window from scratch and serves as the correctness oracle in tests.
"""

from repro.core.arraykernel import (
    ArraySSGGenerator,
    numpy_available,
    select_kernel,
    ssg_generator_class,
)
from repro.core.base import GeneratorStats, MCOSGenerator
from repro.core.framespan import FrameSpan
from repro.core.interning import ObjectInterner
from repro.core.mfs import MarkedFrameSetGenerator
from repro.core.naive import NaiveGenerator
from repro.core.reference import ReferenceGenerator, closed_object_sets
from repro.core.result import ResultState, ResultStateSet
from repro.core.ssg import StrictStateGraphGenerator
from repro.core.state import State, StateTable

__all__ = [
    "ArraySSGGenerator",
    "numpy_available",
    "select_kernel",
    "ssg_generator_class",
    "State",
    "StateTable",
    "ObjectInterner",
    "FrameSpan",
    "ResultState",
    "ResultStateSet",
    "MCOSGenerator",
    "GeneratorStats",
    "NaiveGenerator",
    "MarkedFrameSetGenerator",
    "StrictStateGraphGenerator",
    "ReferenceGenerator",
    "closed_object_sets",
]
