"""Exact, per-window recomputation of MCOSs (the correctness oracle).

The Maximum Co-occurrence Object Sets of a window (Definitions 1 and 2) are
exactly the *closed* object sets of the window frames: an object set ``X`` is
an MCOS of the frame set ``cover(X) = {f : X subseteq objects(f)}`` iff ``X``
equals the intersection of the object sets of the frames in ``cover(X)``.

This module recomputes the closed sets of every window from scratch.  It is
deliberately simple (and therefore slow) so that it can serve as the ground
truth against which the incremental NAIVE / MFS / SSG generators are verified
in the unit and property-based tests.  Internally it runs on a throwaway
:class:`~repro.core.interning.ObjectInterner` (set algebra on int masks),
decoding back to frozensets only when returning -- the same kernel the
incremental generators use, exercised through an independent algorithm.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.base import MCOSGenerator
from repro.core.interning import ObjectInterner
from repro.core.result import ResultState, ResultStateSet
from repro.datamodel.observation import FrameObservation


def closed_object_sets(
    frames: Sequence[FrameObservation],
) -> Dict[FrozenSet[int], FrozenSet[int]]:
    """Compute every closed object set of the given frames.

    Returns a mapping ``{object set -> frame ids containing it}`` restricted to
    object sets that are MCOSs of their frame set (i.e. closed sets).

    The computation builds the closure incrementally: the set of closed sets of
    ``n + 1`` frames is the set of closed sets of ``n`` frames, plus the new
    frame's object set, plus all intersections of the new frame with previous
    closed sets.
    """
    interner = ObjectInterner()
    masks: List[Tuple[int, int]] = [
        (frame.frame_id, interner.intern_ids(frame.object_ids))
        for frame in frames
    ]

    closed: Dict[int, None] = {}
    for _, frame_mask in masks:
        if not frame_mask:
            continue
        new_sets = {frame_mask}
        for existing in closed:
            inter = existing & frame_mask
            if inter:
                new_sets.add(inter)
        for candidate in new_sets:
            closed[candidate] = None

    # A candidate is closed (an MCOS of its cover) iff it equals the
    # intersection of the frames in its cover.
    result: Dict[FrozenSet[int], FrozenSet[int]] = {}
    for candidate in closed:
        cover: List[int] = []
        intersection = -1
        for frame_id, frame_mask in masks:
            if candidate & frame_mask == candidate:
                cover.append(frame_id)
                intersection &= frame_mask
        if cover and intersection == candidate:
            result[interner.decode(candidate)] = frozenset(cover)
    return result


class ReferenceGenerator(MCOSGenerator):
    """Oracle generator: recompute the exact result of every window.

    This generator ignores all incremental machinery: for each incoming frame
    it recomputes the closed object sets of the current window and reports
    those whose cover meets the duration threshold.  It is quadratic in the
    window size and only intended for tests and for very small examples.
    """

    name = "REFERENCE"

    def __init__(self, window_size: int, duration: int, **kwargs):
        super().__init__(window_size, duration, **kwargs)
        self._window: List[FrameObservation] = []

    def _process(self, frame: FrameObservation, frame_bits: int) -> ResultStateSet:
        self._window.append(frame)
        oldest_valid = self._oldest_valid_frame(frame.frame_id)
        while self._window and self._window[0].frame_id < oldest_valid:
            self._window.pop(0)

        result = ResultStateSet(frame.frame_id)
        for object_ids, cover in closed_object_sets(self._window).items():
            if len(cover) >= self.config.duration:
                result.add(ResultState(object_ids, tuple(sorted(cover))))
        self._track_live_states(len(self._window))
        return result

    def _reset_impl(self) -> None:
        self._window = []

    def live_state_count(self) -> int:
        return 0

    def _live_mask(self) -> int:
        """Union mask of every object still inside the window.

        The oracle keeps raw frames rather than states, but interner
        compaction (and the label pruning layered on it) must still treat
        the window population as live: every reported MCOS is a subset of
        these objects.
        """
        mask = 0
        for frame in self._window:
            mask |= self.interner.intern_ids(frame.object_ids)
        return mask

    def _export_impl(self) -> Dict:
        return {"window": [frame.to_record() for frame in self._window]}

    def _import_impl(self, payload: Dict) -> None:
        self._window = [
            FrameObservation.from_record(record) for record in payload["window"]
        ]
