"""Dense bit-position interning of object identifiers.

The MCOS generation layer manipulates object sets constantly: every arriving
frame is intersected with every (reachable) live state, subset relations gate
the SSG edge maintenance, and the state table is keyed by object set.  The
tracker hands out sparse, unbounded object identifiers, so representing those
sets as ``frozenset`` objects makes each of these operations allocate and hash.

An :class:`ObjectInterner` maps each object identifier to a dense bit position
so that an object set becomes a plain Python ``int`` bitmask:

* intersection is ``a & b``,
* subset testing is ``a & b == a``,
* cardinality is ``int.bit_count()``,
* table/graph keys are small ints with cached, perfect hashing.

Masks produced by the *same* interner are mutually compatible; masks from
different interners must never be mixed (the bit-to-object mapping differs).

Id recycling
------------
A long-running stream observes an ever-growing universe of object ids, but the
sliding window only ever holds a bounded subset of them.  Without recycling,
masks would keep growing in bit-length (Python ints are arbitrary precision,
so nothing breaks, but wide masks slow every operation down).  The interner
therefore supports *releasing* bit positions:

* :meth:`release` frees the position of one object id;
* :meth:`compact` frees every allocated position that is not set in a caller
  provided *live mask* (typically the union of all live state masks).

Freed positions are reused lowest-first, keeping masks as narrow as the
current population allows.  Releasing a position while some retained mask
still has its bit set would silently alias two different objects, so callers
must only release objects that no retained mask references — the generators
expose :meth:`~repro.core.base.MCOSGenerator.compact_interner`, which derives
the live mask from the state table and is therefore always safe to call
between frames.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterable, List, Optional


class ObjectInterner:
    """Bidirectional mapping between object ids and dense bitmask positions."""

    __slots__ = ("_bit_by_id", "_id_by_bit", "_free")

    def __init__(self) -> None:
        self._bit_by_id: Dict[int, int] = {}
        self._id_by_bit: List[Optional[int]] = []
        #: Min-heap of released bit positions, reused lowest-first.
        self._free: List[int] = []

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def bit_of(self, object_id: int) -> int:
        """Return (allocating if necessary) the bit position of ``object_id``."""
        position = self._bit_by_id.get(object_id)
        if position is None:
            if self._free:
                position = heapq.heappop(self._free)
                self._id_by_bit[position] = object_id
            else:
                position = len(self._id_by_bit)
                self._id_by_bit.append(object_id)
            self._bit_by_id[object_id] = position
        return position

    def mask_of(self, object_id: int) -> int:
        """Return the single-bit mask of ``object_id``."""
        return 1 << self.bit_of(object_id)

    def intern_ids(self, object_ids: Iterable[int]) -> int:
        """Return the bitmask of a whole object-id collection."""
        mask = 0
        bit_by_id = self._bit_by_id
        for object_id in object_ids:
            position = bit_by_id.get(object_id)
            if position is None:
                position = self.bit_of(object_id)
            mask |= 1 << position
        return mask

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, mask: int) -> FrozenSet[int]:
        """Decode a bitmask back into the frozenset of object ids."""
        ids = []
        id_by_bit = self._id_by_bit
        while mask:
            low = mask & -mask
            object_id = id_by_bit[low.bit_length() - 1]
            if object_id is None:
                raise KeyError(
                    f"bit {low.bit_length() - 1} is not allocated; the mask was "
                    "produced before a release/compact that freed it"
                )
            ids.append(object_id)
            mask ^= low
        return frozenset(ids)

    def object_at(self, position: int) -> int:
        """Return the object id interned at ``position``."""
        object_id = (
            self._id_by_bit[position]
            if 0 <= position < len(self._id_by_bit) else None
        )
        if object_id is None:
            raise KeyError(f"bit position {position} is not allocated")
        return object_id

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._bit_by_id

    def __len__(self) -> int:
        """Number of currently allocated (live) bit positions."""
        return len(self._bit_by_id)

    @property
    def capacity(self) -> int:
        """Width of the widest mask ever produced (allocated + freed bits)."""
        return len(self._id_by_bit)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def export_table(self) -> List[Optional[int]]:
        """Snapshot the bit-position table for checkpointing.

        The returned list is the full ``position -> object id`` table
        (``None`` marks a freed position); it determines the interner's state
        completely, so :meth:`restore_table` on a fresh interner reproduces
        every mask assignment bit for bit.  Used by the streaming runtime's
        checkpoint/restore path (:mod:`repro.streaming.checkpoint`).
        """
        return list(self._id_by_bit)

    def restore_table(self, table: List[Optional[int]]) -> None:
        """Restore the interner (in place) from an :meth:`export_table` snapshot.

        Any existing content is discarded.  Freed positions are rebuilt as a
        min-heap; heap pops always return the smallest free position, so the
        reconstructed interner allocates future bits exactly as the original
        would have.
        """
        id_by_bit: List[Optional[int]] = []
        bit_by_id: Dict[int, int] = {}
        free: List[int] = []
        for position, object_id in enumerate(table):
            if object_id is None:
                id_by_bit.append(None)
                free.append(position)
            else:
                object_id = int(object_id)
                if object_id in bit_by_id:
                    raise ValueError(
                        f"object id {object_id} appears at two positions in "
                        "the interner snapshot"
                    )
                id_by_bit.append(object_id)
                bit_by_id[object_id] = position
        heapq.heapify(free)
        self._id_by_bit = id_by_bit
        self._bit_by_id = bit_by_id
        self._free = free

    # ------------------------------------------------------------------
    # Recycling
    # ------------------------------------------------------------------
    def release(self, object_id: int) -> None:
        """Free the bit position of ``object_id`` for reuse.

        The caller must guarantee that no retained mask still has the bit set;
        otherwise a later re-allocation of the position aliases two objects.
        """
        position = self._bit_by_id.pop(object_id, None)
        if position is None:
            return
        self._id_by_bit[position] = None
        heapq.heappush(self._free, position)

    def compact(self, live_mask: int) -> int:
        """Free every allocated position whose bit is clear in ``live_mask``.

        ``live_mask`` is typically the union of every retained mask (e.g. all
        live state masks of a generator).  Returns the number of positions
        freed.  Trailing fully-free positions are truncated so the capacity
        shrinks along with the population.
        """
        freed = 0
        for position, object_id in enumerate(self._id_by_bit):
            if object_id is None:
                continue
            if not live_mask >> position & 1:
                del self._bit_by_id[object_id]
                self._id_by_bit[position] = None
                heapq.heappush(self._free, position)
                freed += 1
        # Shrink: drop trailing free positions entirely.
        id_by_bit = self._id_by_bit
        while id_by_bit and id_by_bit[-1] is None:
            id_by_bit.pop()
        if self._free:
            capacity = len(id_by_bit)
            self._free = [p for p in self._free if p < capacity]
            heapq.heapify(self._free)
        return freed
