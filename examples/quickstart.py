#!/usr/bin/env python3
"""Quickstart: evaluate a temporal CNF query over a simulated video feed.

The example mirrors the paper's running scenario: find video segments in
which at least two cars appear jointly for a minimum duration inside a
sliding window.  It uses the D1 dataset (a Detrac-style static traffic
camera) and the **Session API** — the package's service-shaped entry point:
queries are registered against a session, frames are ingested as they
arrive, and matches are read off the query's handle.

Run with::

    python examples/quickstart.py
"""

from repro import Q, Session
from repro.datasets import dataset_statistics, load_dataset


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Object detection and tracking: raw "video" -> VR(fid, id, class).
    # ------------------------------------------------------------------
    pipeline_result = load_dataset("D1")
    relation = pipeline_result.relation
    stats = dataset_statistics(relation, "D1")
    print("Dataset:", stats.as_row())
    print(
        f"Detection took {pipeline_result.detection_seconds:.2f}s, "
        f"tracking took {pipeline_result.tracking_seconds:.2f}s, "
        f"{pipeline_result.id_switches} identifier switches."
    )

    # ------------------------------------------------------------------
    # 2. Open a session and register the standing query with the fluent
    #    builder.  Window and duration are in frames (30 fps video).
    # ------------------------------------------------------------------
    window, duration = 90, 45
    with Session(backend="inline", method="SSG") as session:
        handle = session.register(
            Q("car") >= 2, window=window, duration=duration,
            name="two-cars-jointly",
        )
        print(f"\nQuery: {handle.query}  "
              f"(window={window} frames, duration={duration} frames)")

        # --------------------------------------------------------------
        # 3. Stream the feed through the session and read the matches.
        # --------------------------------------------------------------
        for frame in relation.frames():
            session.ingest("d1-camera", frame)
        matches = handle.matches()

        report = session.stats()
        frames_seen = report["streams"][0][1]["frames"]
        engine = report["backend_stats"]["per_engine"][
            f"d1-camera/w{window}d{duration}"
        ]
        print(
            f"\nProcessed {frames_seen} frames in "
            f"{engine['mcos_seconds'] + engine['evaluation_seconds']:.2f}s "
            f"({engine['mcos_seconds']:.2f}s MCOS generation, "
            f"{engine['evaluation_seconds']:.2f}s query evaluation)."
        )
        print(f"Result states examined: {engine['result_states']}")
        print(f"Query matches: {len(matches)}")

        for match in matches[:5]:
            frames = match.frame_ids
            print(
                f"  window ending at frame {match.frame_id}: objects "
                f"{sorted(match.object_ids)} co-occur in {len(frames)} frames "
                f"({frames[0]}..{frames[-1]}), counts={match.counts()}"
            )
        if len(matches) > 5:
            print(f"  ... and {len(matches) - 5} more matches")


if __name__ == "__main__":
    main()
