#!/usr/bin/env python3
"""Quickstart: evaluate a temporal CNF query over a simulated video feed.

The example mirrors the paper's running scenario: find video segments in
which at least two cars and one person appear jointly for a minimum duration
inside a sliding window.  It uses a scaled-down version of the D1 dataset
(a Detrac-style static traffic camera); the whole example runs in a few seconds.

Run with::

    python examples/quickstart.py
"""

from repro import EngineConfig, TemporalVideoQueryEngine, parse_query
from repro.datasets import dataset_statistics, load_dataset


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Object detection and tracking: raw "video" -> VR(fid, id, class).
    # ------------------------------------------------------------------
    pipeline_result = load_dataset("D1")
    relation = pipeline_result.relation
    stats = dataset_statistics(relation, "D1")
    print("Dataset:", stats.as_row())
    print(
        f"Detection took {pipeline_result.detection_seconds:.2f}s, "
        f"tracking took {pipeline_result.tracking_seconds:.2f}s, "
        f"{pipeline_result.id_switches} identifier switches."
    )

    # ------------------------------------------------------------------
    # 2. Declare a temporal CNF query: counts over co-occurring objects.
    #    Window and duration are expressed in frames (30 fps video).
    # ------------------------------------------------------------------
    window, duration = 90, 45
    query = parse_query(
        "car >= 2", window=window, duration=duration,
        name="two-cars-jointly",
    )
    print(f"\nQuery: {query}  (window={window} frames, duration={duration} frames)")

    # ------------------------------------------------------------------
    # 3. Evaluate with the Strict State Graph (SSG) MCOS generator.
    # ------------------------------------------------------------------
    engine = TemporalVideoQueryEngine(
        [query],
        EngineConfig(method="SSG", window_size=window, duration=duration),
    )
    run = engine.run(relation)

    print(
        f"\nProcessed {run.frames_processed} frames in "
        f"{run.total_seconds:.2f}s "
        f"({run.mcos_seconds:.2f}s MCOS generation, "
        f"{run.evaluation_seconds:.2f}s query evaluation)."
    )
    print(f"Result states examined: {run.result_states}")
    print(f"Query matches: {len(run.matches)}")

    for match in run.matches[:5]:
        frames = match.frame_ids
        print(
            f"  window ending at frame {match.frame_id}: objects "
            f"{sorted(match.object_ids)} co-occur in {len(frames)} frames "
            f"({frames[0]}..{frames[-1]}), counts={match.counts()}"
        )
    if len(run.matches) > 5:
        print(f"  ... and {len(run.matches) - 5} more matches")


if __name__ == "__main__":
    main()
