#!/usr/bin/env python3
"""Traffic monitoring: a live session with queries arriving and retiring.

A traffic operations centre watches an intersection camera and wants
standing alerts such as "at least three cars jointly present for two
seconds" (congestion) or "a bus in view" (bus-lane monitoring).  This
example shows the **live query lifecycle** of the Session API: the feed
keeps flowing while an analyst

* registers alerts up front,
* poses a *new* alert mid-stream (it joins live, with a documented warm-up
  watermark before its results carry from-the-start guarantees), and
* retires an alert that is no longer needed (its id is tombstoned and its
  evaluator state released).

It also demonstrates the Proposition-1 pruning optimisation: because every
condition uses ``>=``, the session can terminate unpromising states early
(the ``SSG_O`` variant of the paper), and the example reports how much
state maintenance that saves.

Run with::

    python examples/traffic_monitoring.py
"""

from repro import Q, Session
from repro.datasets import load_dataset


def run_monitoring(enable_pruning: bool, relation, window: int, duration: int):
    """One monitoring run over the feed.

    Returns ``(session stats, alerts-by-name, warm-up watermark of the
    mid-shift heavy-vehicles alert)``.
    """
    frames = list(relation.frames())
    midpoint = len(frames) // 2
    with Session(
        backend="inline", method="SSG", enable_pruning=enable_pruning
    ) as session:
        congestion = session.register(
            Q("car") >= 3, window=window, duration=duration, name="congestion"
        )
        bus_lane = session.register(
            Q("bus") >= 1, window=window, duration=duration, name="bus-in-view"
        )

        for frame in frames[:midpoint]:
            session.ingest("intersection-cam", frame)

        # Mid-shift, the analyst adds a heavy-vehicle alert and drops the
        # bus-lane one — no teardown, the feed keeps flowing.
        heavy = session.register(
            (Q("truck") >= 1) & (Q("car") >= 1),
            window=window, duration=duration, name="heavy-vehicles",
        )
        bus_lane.cancel()

        for frame in frames[midpoint:]:
            session.ingest("intersection-cam", frame)

        alerts = {
            handle.name: handle.matches()
            for handle in (congestion, bus_lane, heavy)
        }
        watermark = heavy.warmup_watermark("intersection-cam")
        return session.stats(), alerts, watermark


def main() -> None:
    # D2: the densest traffic-camera feed of the evaluation datasets.
    pipeline_result = load_dataset("D2")
    relation = pipeline_result.relation
    window, duration = 90, 60  # 3-second window, 2 seconds of joint presence

    print(f"Streaming {relation.num_frames} frames from the D2 feed "
          f"(w={window}, d={duration})\n")

    for enable_pruning in (False, True):
        stats, alerts, watermark = run_monitoring(
            enable_pruning, relation, window, duration
        )
        label = "SSG_O" if enable_pruning else "SSG"
        print(f"[{label}]")
        for name, matches in alerts.items():
            windows = {m.frame_id for m in matches}
            state = "retired mid-shift" if name == "bus-in-view" else "active"
            print(f"  {name:15s} ({state}): {len(matches)} alerts "
                  f"in {len(windows)} distinct windows")
        print(f"  heavy-vehicles joined live; full-history guarantees from "
              f"frame {watermark} on")
        generators = [
            entry["generator"]
            for entry in stats["backend_stats"]["per_engine"].values()
        ]
        created = sum(g["states_created"] for g in generators)
        terminated = sum(g["states_terminated"] for g in generators)
        visits = sum(g["state_visits"] for g in generators)
        print(f"  states created: {created}, terminated early: {terminated}, "
              f"state visits: {visits}\n")


if __name__ == "__main__":
    main()
