#!/usr/bin/env python3
"""Traffic monitoring: congestion and bus-lane queries over a live feed.

A traffic operations centre watches an intersection camera and wants standing
alerts such as "at least three cars jointly present for two seconds"
(congestion) or "a bus in view" (bus-lane monitoring).  This example shows the *streaming* API: frames are pushed
into the engine one at a time and matches are reported as the window slides,
exactly as an online deployment would consume a camera feed.

It also demonstrates the Proposition-1 pruning optimisation: because every
condition uses ``>=``, the engine can terminate unpromising states early
(the ``SSG_O`` variant of the paper), and the example reports how much state
maintenance that saves.

Run with::

    python examples/traffic_monitoring.py
"""

from repro import EngineConfig, TemporalVideoQueryEngine
from repro.datasets import load_dataset
from repro.query import parse_query


def build_engine(enable_pruning: bool, window: int, duration: int) -> TemporalVideoQueryEngine:
    """Create the monitoring engine with the standing alert queries."""
    queries = [
        parse_query("car >= 3", window=window, duration=duration,
                    name="congestion"),
        parse_query("bus >= 1", window=window, duration=duration,
                    name="bus-in-view"),
        parse_query("truck >= 1 AND car >= 1", window=window, duration=duration,
                    name="heavy-vehicles"),
    ]
    config = EngineConfig(
        method="SSG", window_size=window, duration=duration,
        enable_pruning=enable_pruning,
    )
    return TemporalVideoQueryEngine(queries, config)


def main() -> None:
    # D2: the densest traffic-camera feed of the evaluation datasets.
    pipeline_result = load_dataset("D2")
    relation = pipeline_result.relation
    window, duration = 90, 60  # 3-second window, 2 seconds of joint presence

    print(f"Streaming {relation.num_frames} frames from the D2 feed "
          f"(w={window}, d={duration})\n")

    for enable_pruning in (False, True):
        engine = build_engine(enable_pruning, window, duration)
        alerts = 0
        alert_frames = []
        for frame in relation.frames():
            matches = engine.process_frame(frame)
            if matches:
                alerts += len(matches)
                alert_frames.append(frame.frame_id)

        label = engine.method_label
        stats = engine.generator.stats
        print(f"[{label}]")
        print(f"  alerts raised: {alerts} "
              f"(in {len(set(alert_frames))} distinct windows)")
        print(f"  states created: {stats.states_created}, "
              f"terminated early: {stats.states_terminated}, "
              f"state visits: {stats.state_visits}")
        if alert_frames:
            print(f"  first alert at frame {alert_frames[0]}, "
                  f"last at frame {alert_frames[-1]}")
        print()


if __name__ == "__main__":
    main()
