#!/usr/bin/env python3
"""Quickstart: the service tier — queries and frames over HTTP.

Stands up the multi-tenant gateway on an ephemeral loopback port,
registers a standing query through ``POST /v1/queries``, ingests a seeded
camera feed as NDJSON frame batches, and reads matches back both ways the
service supports: bounded polling (``GET /v1/queries/{id}/matches``) and
the chunked NDJSON match stream (``GET /v1/queries/{id}/stream``).

Everything is stdlib + this package: the gateway is hand-rolled HTTP/1.1
over ``asyncio``, the client is ``http.client``.  Run with::

    python examples/serve_quickstart.py
"""

from repro.serve import Gateway, GatewayClient, GatewayRunner, TenantConfig
from repro.workloads.streams import simulated_feed


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Configure a tenant (API key + quotas) and start the gateway on
    #    an ephemeral port.  The inline backend keeps the example
    #    single-process; "pool" drops in unchanged.
    # ------------------------------------------------------------------
    tenant = TenantConfig(
        "demo", "demo-secret-key", max_queries=4, max_streams=4,
    )
    gateway = Gateway([tenant], admin_key="ops-key", backend="inline")
    with GatewayRunner(gateway) as runner:
        print(f"gateway listening on http://{runner.host}:{runner.port}")

        with GatewayClient(runner.host, runner.port, "demo-secret-key") as client:
            # ----------------------------------------------------------
            # 2. Register the standing query (the paper's fluent CNF
            #    grammar) and stream in a seeded simulated camera feed.
            # ----------------------------------------------------------
            query_id = client.register_query(
                "car >= 1 AND person >= 1", window=30, duration=10,
            )
            print(f"registered query {query_id}")

            feed = simulated_feed("cam-01", seed=11, num_frames=150)
            frames = list(feed.frames())
            for start in range(0, len(frames), 25):
                client.post_frames("cam-01", frames[start:start + 25])
            print(f"ingested {len(frames)} frames on stream cam-01")

            # ----------------------------------------------------------
            # 3. Barrier: the flush pushes every buffered frame through
            #    and delivers all produced matches to the query's feed.
            # ----------------------------------------------------------
            client.flush()

            # ----------------------------------------------------------
            # 4. The streaming path: a chunked NDJSON feed of match
            #    events.  New subscribers catch up on events still
            #    pending in the poll buffer (without consuming them),
            #    then receive live events as they are produced.
            # ----------------------------------------------------------
            streamed = [
                event for event in client.stream_matches(query_id, limit=5)
                if event["event"] == "match"
            ]
            print(f"streamed {len(streamed)} matches over the chunked feed")

            # ----------------------------------------------------------
            # 5. The polling path sees the same events — and consumes
            #    them: the buffer is bounded, and the next poll returns
            #    only what was produced since.
            # ----------------------------------------------------------
            polled = client.poll_matches(query_id)
            print(f"polled {len(polled['matches'])} matches "
                  f"(lagged={polled['lagged']})")
            for event in polled["matches"][:3]:
                print(f"  frame {event['frame_id']:>3}  "
                      f"objects {event['object_ids']}  "
                      f"counts {dict(event['classes'])}")

            # ----------------------------------------------------------
            # 6. Operations: health and per-tenant usage.
            # ----------------------------------------------------------
            health = client.healthz().payload
            usage = client.stats().payload["tenants"]["demo"]
            print(f"healthz: {health['status']}; "
                  f"tenant ingested {usage['ingest']['frames']} frames, "
                  f"{usage['matches_delivered']} matches delivered")

            assert polled["matches"], "the seeded feed must produce matches"
            assert health["status"] == "ok"
    print("gateway stopped")


if __name__ == "__main__":
    main()
