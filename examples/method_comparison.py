#!/usr/bin/env python3
"""Compare NAIVE, MFS and SSG state maintenance on one dataset.

Reproduces, at a reduced scale, the trade-off analysis of the paper's
Section 6.2: how much state-maintenance work each strategy performs as the
window size grows, on a dense dataset (M2, the moving-camera pedestrian
scene with the most objects per frame).

Run with::

    python examples/method_comparison.py
"""

from repro.core import MarkedFrameSetGenerator, NaiveGenerator, StrictStateGraphGenerator
from repro.datasets import load_relation
from repro.experiments.harness import time_mcos_generation
from repro.engine.config import MCOSMethod


def main() -> None:
    relation = load_relation("M2", scale=0.5)
    duration_ratio = 0.8
    print(f"Dataset M2 (scaled): {relation.num_frames} frames, "
          f"{len(relation.object_ids())} objects\n")

    header = f"{'window':>8} {'method':>7} {'seconds':>9} {'visits':>10} {'max states':>11} {'results':>8}"
    print(header)
    print("-" * len(header))
    for window in (60, 90, 120, 150):
        duration = int(window * duration_ratio)
        for method in (MCOSMethod.NAIVE, MCOSMethod.MFS, MCOSMethod.SSG):
            timing = time_mcos_generation(relation, method, window, duration)
            stats = timing.stats
            print(f"{window:>8} {timing.method:>7} {timing.seconds:>9.3f} "
                  f"{stats.state_visits:>10} {stats.max_live_states:>11} "
                  f"{timing.result_states:>8}")
        print()

    print("The marked-frame-set and graph approaches prune invalid states "
          "early; the SSG additionally skips whole subtrees whose\n"
          "intersection with the arriving frame is empty, which shows up as "
          "the lower state-visit counts above.")


if __name__ == "__main__":
    main()
