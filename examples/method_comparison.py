#!/usr/bin/env python3
"""Compare NAIVE, MFS and SSG state maintenance on one dataset.

Reproduces, at a reduced scale, the trade-off analysis of the paper's
Section 6.2: how much state-maintenance work each strategy performs as the
window size grows, on a dense dataset (M2, the moving-camera pedestrian
scene with the most objects per frame).

Each (window, method) cell drives the same feed through a
:class:`~repro.Session` on the chosen method.  A sentinel query keeps the
full object population in play (``restrict_labels=False``, a threshold no
scene reaches), so the numbers isolate MCOS state maintenance exactly as
the paper's figures do.

Run with::

    python examples/method_comparison.py
"""

from repro import Q, Session
from repro.datasets import load_relation


def measure(relation, method: str, window: int, duration: int):
    """Session-driven state-maintenance cost of one (method, window) cell."""
    with Session(
        backend="inline", method=method, restrict_labels=False
    ) as session:
        session.register(
            Q("person") >= 99,  # sentinel: never satisfied, nothing projected
            window=window, duration=duration, name="probe",
        )
        for frame in relation.frames():
            session.ingest("m2-feed", frame)
        stats = session.stats()["backend_stats"]["per_engine"][
            f"m2-feed/w{window}d{duration}"
        ]
        return stats


def main() -> None:
    relation = load_relation("M2", scale=0.5)
    duration_ratio = 0.8
    print(f"Dataset M2 (scaled): {relation.num_frames} frames, "
          f"{len(relation.object_ids())} objects\n")

    header = (f"{'window':>8} {'method':>7} {'seconds':>9} {'visits':>10} "
              f"{'max states':>11} {'results':>8}")
    print(header)
    print("-" * len(header))
    for window in (60, 90, 120, 150):
        duration = int(window * duration_ratio)
        for method in ("NAIVE", "MFS", "SSG"):
            stats = measure(relation, method, window, duration)
            generator = stats["generator"]
            print(f"{window:>8} {method:>7} {stats['mcos_seconds']:>9.3f} "
                  f"{generator['state_visits']:>10} "
                  f"{generator['max_live_states']:>11} "
                  f"{stats['result_states']:>8}")
        print()

    print("The marked-frame-set and graph approaches prune invalid states "
          "early; the SSG additionally skips whole subtrees whose\n"
          "intersection with the arriving frame is empty, which shows up as "
          "the lower state-visit counts above.")


if __name__ == "__main__":
    main()
