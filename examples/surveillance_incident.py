#!/usr/bin/env python3
"""Surveillance scenario: search footage for a reported incident.

The paper's introduction motivates temporal queries with an investigation
scenario: witnesses report "a white car and two males on the street", and
analysts need every video segment in which a car and at least two people
appear jointly for a sustained period.

This example builds a small surveillance scene with the simulated world
(a parked car, pedestrians passing by, a group lingering near the car),
runs detection and tracking, and then evaluates several incident queries
with different MCOS generation strategies, comparing their costs.

Run with::

    python examples/surveillance_incident.py
"""

from repro import EngineConfig, TemporalVideoQueryEngine
from repro.query import parse_query
from repro.vision import Camera, ScriptedObject, World
from repro.vision.detector import DetectorConfig, SimulatedDetector
from repro.vision.pipeline import DetectionTrackingPipeline
from repro.vision.tracker import DeepSortLikeTracker


def build_incident_scene() -> World:
    """A street scene: one parked car, passers-by, and a loitering group."""
    objects = [
        # The parked car of interest: present for the whole clip.
        ScriptedObject(
            world_id=0, label="car", enter_frame=0, exit_frame=899,
            waypoints=[(0, 900.0, 650.0), (899, 900.0, 650.0)],
            size=(180.0, 110.0), depth=0.2,
        ),
        # Two people who approach the car and stay near it (the incident).
        ScriptedObject(
            world_id=1, label="person", enter_frame=120, exit_frame=720,
            waypoints=[(120, 100.0, 800.0), (300, 850.0, 700.0), (720, 870.0, 690.0)],
            size=(55.0, 150.0), depth=0.8,
        ),
        ScriptedObject(
            world_id=2, label="person", enter_frame=150, exit_frame=700,
            waypoints=[(150, 1800.0, 820.0), (330, 980.0, 710.0), (700, 960.0, 700.0)],
            size=(60.0, 155.0), depth=0.9,
            hidden_intervals=((400, 430),),  # briefly occluded behind the car
        ),
        # Unrelated traffic passing through.
        ScriptedObject(
            world_id=3, label="car", enter_frame=200, exit_frame=320,
            waypoints=[(200, -150.0, 400.0), (320, 2050.0, 400.0)],
            size=(170.0, 105.0), depth=0.4,
        ),
        ScriptedObject(
            world_id=4, label="truck", enter_frame=500, exit_frame=650,
            waypoints=[(500, 2050.0, 350.0), (650, -200.0, 350.0)],
            size=(260.0, 160.0), depth=0.4,
        ),
        ScriptedObject(
            world_id=5, label="person", enter_frame=60, exit_frame=240,
            waypoints=[(60, 300.0, 900.0), (240, 1700.0, 880.0)],
            size=(58.0, 150.0), depth=0.7,
        ),
    ]
    return World(objects, camera=Camera(), num_frames=900, name="incident-scene")


def main() -> None:
    world = build_incident_scene()
    pipeline = DetectionTrackingPipeline(
        SimulatedDetector(DetectorConfig(), seed=11), DeepSortLikeTracker()
    )
    result = pipeline.run(world)
    relation = result.relation
    print(
        f"Scene: {relation.num_frames} frames, "
        f"{len(relation.object_ids())} tracked objects, "
        f"{result.id_switches} id switches."
    )

    # 10-second window (300 frames), joint presence for at least 5 seconds.
    window, duration = 300, 150
    queries = [
        parse_query("car >= 1 AND person >= 2", window=window, duration=duration,
                    name="car-with-two-people"),
        parse_query("car >= 2", window=window, duration=duration,
                    name="two-cars"),
        parse_query("truck >= 1 AND person >= 1", window=window, duration=duration,
                    name="truck-with-person"),
    ]

    for method in ("NAIVE", "MFS", "SSG"):
        engine = TemporalVideoQueryEngine(
            queries, EngineConfig(method=method, window_size=window, duration=duration)
        )
        run = engine.run(relation)
        by_query = run.matches_by_query()
        print(f"\n[{method}] total {run.total_seconds:.2f}s, "
              f"{run.generator_stats.state_visits} state visits")
        for query in engine.queries:
            matches = by_query.get(query.query_id, [])
            windows = {m.frame_id for m in matches}
            print(f"  {query.name:22s} -> satisfied in {len(windows)} windows")
            if matches:
                first = min(windows)
                last = max(windows)
                print(f"    first match at frame {first}, last at frame {last}")


if __name__ == "__main__":
    main()
