#!/usr/bin/env python3
"""Surveillance scenario: search footage for a reported incident.

The paper's introduction motivates temporal queries with an investigation
scenario: witnesses report "a white car and two males on the street", and
analysts need every video segment in which a car and at least two people
appear jointly for a sustained period.

This example builds a small surveillance scene with the simulated world
(a parked car, pedestrians passing by, a group lingering near the car),
runs detection and tracking, and then poses several incident queries
through one :class:`~repro.Session` per MCOS generation strategy,
comparing their costs.

Run with::

    python examples/surveillance_incident.py
"""

from repro import Q, Session
from repro.vision import Camera, ScriptedObject, World
from repro.vision.detector import DetectorConfig, SimulatedDetector
from repro.vision.pipeline import DetectionTrackingPipeline
from repro.vision.tracker import DeepSortLikeTracker


def build_incident_scene() -> World:
    """A street scene: one parked car, passers-by, and a loitering group."""
    objects = [
        # The parked car of interest: present for the whole clip.
        ScriptedObject(
            world_id=0, label="car", enter_frame=0, exit_frame=899,
            waypoints=[(0, 900.0, 650.0), (899, 900.0, 650.0)],
            size=(180.0, 110.0), depth=0.2,
        ),
        # Two people who approach the car and stay near it (the incident).
        ScriptedObject(
            world_id=1, label="person", enter_frame=120, exit_frame=720,
            waypoints=[(120, 100.0, 800.0), (300, 850.0, 700.0), (720, 870.0, 690.0)],
            size=(55.0, 150.0), depth=0.8,
        ),
        ScriptedObject(
            world_id=2, label="person", enter_frame=150, exit_frame=700,
            waypoints=[(150, 1800.0, 820.0), (330, 980.0, 710.0), (700, 960.0, 700.0)],
            size=(60.0, 155.0), depth=0.9,
            hidden_intervals=((400, 430),),  # briefly occluded behind the car
        ),
        # Unrelated traffic passing through.
        ScriptedObject(
            world_id=3, label="car", enter_frame=200, exit_frame=320,
            waypoints=[(200, -150.0, 400.0), (320, 2050.0, 400.0)],
            size=(170.0, 105.0), depth=0.4,
        ),
        ScriptedObject(
            world_id=4, label="truck", enter_frame=500, exit_frame=650,
            waypoints=[(500, 2050.0, 350.0), (650, -200.0, 350.0)],
            size=(260.0, 160.0), depth=0.4,
        ),
        ScriptedObject(
            world_id=5, label="person", enter_frame=60, exit_frame=240,
            waypoints=[(60, 300.0, 900.0), (240, 1700.0, 880.0)],
            size=(58.0, 150.0), depth=0.7,
        ),
    ]
    return World(objects, camera=Camera(), num_frames=900, name="incident-scene")


def main() -> None:
    world = build_incident_scene()
    pipeline = DetectionTrackingPipeline(
        SimulatedDetector(DetectorConfig(), seed=11), DeepSortLikeTracker()
    )
    result = pipeline.run(world)
    relation = result.relation
    print(
        f"Scene: {relation.num_frames} frames, "
        f"{len(relation.object_ids())} tracked objects, "
        f"{result.id_switches} id switches."
    )

    # 10-second window (300 frames), joint presence for at least 5 seconds.
    window, duration = 300, 150
    incident_queries = [
        ((Q("car") >= 1) & (Q("person") >= 2), "car-with-two-people"),
        (Q("car") >= 2, "two-cars"),
        ((Q("truck") >= 1) & (Q("person") >= 1), "truck-with-person"),
    ]

    for method in ("NAIVE", "MFS", "SSG"):
        with Session(backend="inline", method=method) as session:
            handles = [
                session.register(expr, window=window, duration=duration, name=name)
                for expr, name in incident_queries
            ]
            for frame in relation.frames():
                session.ingest("forensic-clip", frame)

            stats = session.stats()
            engine = stats["backend_stats"]["per_engine"][
                f"forensic-clip/w{window}d{duration}"
            ]
            seconds = engine["mcos_seconds"] + engine["evaluation_seconds"]
            print(f"\n[{method}] total {seconds:.2f}s, "
                  f"{engine['generator']['state_visits']} state visits")
            for handle in handles:
                matches = handle.matches()
                windows = {m.frame_id for m in matches}
                print(f"  {handle.name:22s} -> satisfied in {len(windows)} windows")
                if matches:
                    print(f"    first match at frame {min(windows)}, "
                          f"last at frame {max(windows)}")


if __name__ == "__main__":
    main()
